// Package static implements the static routing tasks of §1.2: a single
// permutation (every node sends one packet, destinations form a permutation)
// routed either greedily along canonical dimension-order paths or with the
// Valiant–Brebner two-phase randomized algorithm [VaB81, Val82]. The paper's
// §2.3 baselines pipeline instances of these static algorithms; this package
// measures the building block itself — the completion time (makespan) of one
// instance — whose concentration around R·d with R a small constant is the
// property the batch schemes rely on.
//
// The package also provides a batch-of-permutations task (route k
// permutations back to back with a barrier between them), the structure used
// by the pipelined baselines, so their round length can be studied in
// isolation from the dynamic arrival process.
package static

import (
	"fmt"

	"repro/internal/hypercube"
	"repro/internal/network"
	"repro/internal/routing"
	"repro/internal/stats"
	"repro/internal/workload"
	"repro/internal/xrand"
)

// Scheme selects the static routing algorithm.
type Scheme int

const (
	// Greedy routes every packet along its canonical dimension-order path.
	Greedy Scheme = iota
	// Valiant routes every packet through a uniformly random intermediate
	// node, both phases along canonical paths, with the second phase started
	// immediately when a packet finishes its first phase (no global barrier).
	Valiant
)

// String names the scheme.
func (s Scheme) String() string {
	switch s {
	case Greedy:
		return "greedy"
	case Valiant:
		return "valiant"
	default:
		return fmt.Sprintf("scheme(%d)", int(s))
	}
}

// PermutationResult reports the routing of one permutation.
type PermutationResult struct {
	// Makespan is the time at which the last packet reached its destination.
	Makespan float64
	// MeanDelay is the mean per-packet delivery time.
	MeanDelay float64
	// MaxQueueLength is the largest arc queue observed (including the packet
	// in service).
	MaxQueueLength int
	// TotalHops is the total number of arc traversals.
	TotalHops int64
	// Packets is the number of packets routed (2^d minus fixed points for a
	// permutation with fixed points, which travel zero hops).
	Packets int64
}

// RoutePermutation routes one packet from every node x to perm[x] and returns
// the completion-time statistics. perm must have length 2^d.
func RoutePermutation(d int, perm []hypercube.Node, scheme Scheme, seed uint64) (*PermutationResult, error) {
	if d < 1 || d > hypercube.MaxDimension {
		return nil, fmt.Errorf("static: dimension %d out of range [1,%d]", d, hypercube.MaxDimension)
	}
	cube := hypercube.New(d)
	if len(perm) != cube.Nodes() {
		return nil, fmt.Errorf("static: permutation has %d entries, want %d", len(perm), cube.Nodes())
	}
	seen := make([]bool, cube.Nodes())
	for _, z := range perm {
		if !cube.Contains(z) {
			return nil, fmt.Errorf("static: destination %d outside the %d-cube", z, d)
		}
		if seen[z] {
			return nil, fmt.Errorf("static: destination %d repeated; not a permutation", z)
		}
		seen[z] = true
	}

	sys := network.NewSystem(network.Config{
		NumArcs:   cube.NumArcs(),
		GroupOf:   func(a int) int { return int(cube.DimensionOfArcIndex(a)) - 1 },
		NumGroups: d,
		Seed:      seed,
	})
	rng := xrand.NewStream(seed, 0x57A71C)
	var greedyRouter routing.HypercubeRouter = routing.DimensionOrder{}
	var valiantRouter routing.HypercubeRouter = routing.ValiantTwoPhase{}

	res := &PermutationResult{}
	var delays stats.Tally
	sys.OnDeliver = func(p *network.Packet, now float64) {
		delays.Add(now)
	}
	maxQueue := 0
	trackMax := func() {
		for a := 0; a < cube.NumArcs(); a++ {
			if q := sys.QueueLength(a); q > maxQueue {
				maxQueue = q
			}
		}
	}

	sys.Sim.ScheduleAt(0, func() {
		for x := 0; x < cube.Nodes(); x++ {
			origin := hypercube.Node(x)
			dest := perm[x]
			var path []int
			switch scheme {
			case Greedy:
				path = routing.Path(greedyRouter, cube, origin, dest, rng)
			case Valiant:
				path = routing.Path(valiantRouter, cube, origin, dest, rng)
			default:
				panic(fmt.Sprintf("static: unknown scheme %d", int(scheme)))
			}
			res.TotalHops += int64(len(path))
			res.Packets++
			sys.Inject(&network.Packet{
				ID:     sys.NewPacketID(),
				Origin: x,
				Dest:   int(dest),
				Path:   path,
			})
		}
		trackMax()
	})
	sys.Sim.Run()
	res.Makespan = sys.Sim.Now()
	res.MeanDelay = delays.Mean()
	res.MaxQueueLength = maxQueue
	return res, nil
}

// RouteRandomPermutation draws a uniformly random permutation and routes it.
func RouteRandomPermutation(d int, scheme Scheme, seed uint64) (*PermutationResult, error) {
	rng := xrand.NewStream(seed, 0x9E12)
	perm := workload.Permutation(d, rng)
	return RoutePermutation(d, perm, scheme, seed)
}

// TrialSummary aggregates repeated random-permutation trials.
type TrialSummary struct {
	// Trials is the number of permutations routed.
	Trials int
	// MeanMakespan, MaxMakespan and MakespanStdDev summarise the completion
	// time distribution.
	MeanMakespan   float64
	MaxMakespan    float64
	MakespanStdDev float64
	// MeanDelay is the grand mean per-packet delivery time.
	MeanDelay float64
	// FractionWithin reports, for each multiplier in Multipliers, the
	// fraction of trials whose makespan was at most multiplier*d — the
	// "completes in Rd time with high probability" statement of [VaB81].
	Multipliers    []float64
	FractionWithin []float64
}

// RunTrials routes `trials` independent random permutations and summarises
// the makespan distribution. multipliers lists the R values for which the
// fraction of trials finishing within R*d is reported.
func RunTrials(d int, scheme Scheme, trials int, multipliers []float64, seed uint64) (*TrialSummary, error) {
	if trials <= 0 {
		return nil, fmt.Errorf("static: trials must be positive, got %d", trials)
	}
	var makespan, delay stats.Tally
	within := make([]int, len(multipliers))
	for i := 0; i < trials; i++ {
		r, err := RouteRandomPermutation(d, scheme, seed+uint64(i))
		if err != nil {
			return nil, err
		}
		makespan.Add(r.Makespan)
		delay.Add(r.MeanDelay)
		for m, mult := range multipliers {
			if r.Makespan <= mult*float64(d) {
				within[m]++
			}
		}
	}
	sum := &TrialSummary{
		Trials:         trials,
		MeanMakespan:   makespan.Mean(),
		MaxMakespan:    makespan.Max(),
		MakespanStdDev: makespan.StdDev(),
		MeanDelay:      delay.Mean(),
		Multipliers:    append([]float64(nil), multipliers...),
		FractionWithin: make([]float64, len(multipliers)),
	}
	for m := range multipliers {
		sum.FractionWithin[m] = float64(within[m]) / float64(trials)
	}
	return sum, nil
}

// BatchResult reports routing k permutations back to back with a barrier.
type BatchResult struct {
	// Rounds is the number of permutations routed.
	Rounds int
	// TotalTime is the sum of the per-round makespans (the barrier model of
	// §2.3 — a new round starts only when the previous one has drained).
	TotalTime float64
	// MeanRound is TotalTime / Rounds, the effective service time of the
	// per-node M/G/1 queue in the pipelined baseline.
	MeanRound float64
}

// RouteBatch routes `rounds` independent random permutations sequentially
// with a barrier after each, as the §2.3 pipelined baseline does.
func RouteBatch(d int, scheme Scheme, rounds int, seed uint64) (*BatchResult, error) {
	if rounds <= 0 {
		return nil, fmt.Errorf("static: rounds must be positive, got %d", rounds)
	}
	out := &BatchResult{Rounds: rounds}
	for i := 0; i < rounds; i++ {
		r, err := RouteRandomPermutation(d, scheme, seed+uint64(i)*7919)
		if err != nil {
			return nil, err
		}
		out.TotalTime += r.Makespan
	}
	out.MeanRound = out.TotalTime / float64(rounds)
	return out, nil
}
