package static

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/hypercube"
	"repro/internal/workload"
	"repro/internal/xrand"
)

func identity(d int) []hypercube.Node {
	n := 1 << uint(d)
	perm := make([]hypercube.Node, n)
	for i := range perm {
		perm[i] = hypercube.Node(i)
	}
	return perm
}

func TestValidation(t *testing.T) {
	if _, err := RoutePermutation(0, nil, Greedy, 1); err == nil {
		t.Fatal("expected error for d=0")
	}
	if _, err := RoutePermutation(3, identity(2), Greedy, 1); err == nil {
		t.Fatal("expected error for wrong length")
	}
	badDup := identity(3)
	badDup[1] = badDup[0]
	if _, err := RoutePermutation(3, badDup, Greedy, 1); err == nil {
		t.Fatal("expected error for duplicate destination")
	}
	badRange := identity(3)
	badRange[0] = 200
	if _, err := RoutePermutation(3, badRange, Greedy, 1); err == nil {
		t.Fatal("expected error for out-of-range destination")
	}
	if _, err := RunTrials(3, Greedy, 0, nil, 1); err == nil {
		t.Fatal("expected error for zero trials")
	}
	if _, err := RouteBatch(3, Greedy, 0, 1); err == nil {
		t.Fatal("expected error for zero rounds")
	}
}

func TestIdentityPermutationIsFree(t *testing.T) {
	res, err := RoutePermutation(4, identity(4), Greedy, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan != 0 || res.TotalHops != 0 {
		t.Fatalf("identity permutation should cost nothing: %+v", res)
	}
	if res.Packets != 16 {
		t.Fatalf("packets = %d", res.Packets)
	}
}

func TestTransposePermutationGreedy(t *testing.T) {
	// The bit-complement permutation sends x to its antipode; the canonical
	// paths of different packets are arc-disjoint (see the end of §3.3), so
	// the greedy makespan is exactly d and every packet takes d hops with no
	// queueing beyond its own transmissions.
	d := 5
	n := 1 << uint(d)
	perm := make([]hypercube.Node, n)
	for x := range perm {
		perm[x] = hypercube.Node(x) ^ hypercube.Node(n-1)
	}
	res, err := RoutePermutation(d, perm, Greedy, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan != float64(d) {
		t.Fatalf("antipodal makespan %v, want exactly %d", res.Makespan, d)
	}
	if res.MeanDelay != float64(d) {
		t.Fatalf("mean delay %v, want %d", res.MeanDelay, d)
	}
	if res.TotalHops != int64(d*n) {
		t.Fatalf("total hops %d", res.TotalHops)
	}
	if res.MaxQueueLength > 1 {
		t.Fatalf("antipodal routing should never queue, max queue %d", res.MaxQueueLength)
	}
}

func TestRandomPermutationGreedyMakespanIsOrderD(t *testing.T) {
	// [VaB81]: a random permutation completes in O(d) time with high
	// probability under greedy dimension-order routing (this is exactly the
	// randomized-destination situation, not a worst-case permutation).
	d := 6
	sum, err := RunTrials(d, Greedy, 20, []float64{1, 2, 3}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if sum.MeanMakespan < float64(d)/2 {
		t.Fatalf("mean makespan %v suspiciously small", sum.MeanMakespan)
	}
	if sum.MaxMakespan > 3*float64(d) {
		t.Fatalf("max makespan %v exceeds 3d", sum.MaxMakespan)
	}
	if sum.FractionWithin[2] < 0.95 {
		t.Fatalf("fraction within 3d = %v", sum.FractionWithin[2])
	}
	// Fractions are monotone in the multiplier.
	if sum.FractionWithin[0] > sum.FractionWithin[1] || sum.FractionWithin[1] > sum.FractionWithin[2] {
		t.Fatalf("fractions not monotone: %v", sum.FractionWithin)
	}
	if sum.Trials != 20 {
		t.Fatalf("trials = %d", sum.Trials)
	}
}

func TestValiantLongerButSameOrder(t *testing.T) {
	d := 6
	greedy, err := RunTrials(d, Greedy, 10, []float64{3}, 4)
	if err != nil {
		t.Fatal(err)
	}
	valiant, err := RunTrials(d, Valiant, 10, []float64{3}, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Valiant doubles the expected path length, so its makespan and delay
	// are larger, but still O(d).
	if valiant.MeanMakespan <= greedy.MeanMakespan {
		t.Fatalf("Valiant makespan %v not larger than greedy %v",
			valiant.MeanMakespan, greedy.MeanMakespan)
	}
	if valiant.MeanMakespan > 6*float64(d) {
		t.Fatalf("Valiant makespan %v not O(d)", valiant.MeanMakespan)
	}
	if valiant.MeanDelay <= greedy.MeanDelay {
		t.Fatal("Valiant mean delay should exceed greedy")
	}
}

func TestPermutationDelayAtLeastHammingAverage(t *testing.T) {
	d := 5
	rng := xrand.NewStream(99, 1)
	perm := workload.Permutation(d, rng)
	res, err := RoutePermutation(d, perm, Greedy, 5)
	if err != nil {
		t.Fatal(err)
	}
	var totalH float64
	for x, z := range perm {
		totalH += float64(hypercube.Hamming(hypercube.Node(x), z))
	}
	meanH := totalH / float64(len(perm))
	if res.MeanDelay < meanH-1e-9 {
		t.Fatalf("mean delay %v below mean Hamming distance %v", res.MeanDelay, meanH)
	}
	if float64(res.TotalHops) != totalH {
		t.Fatalf("total hops %d, want %v", res.TotalHops, totalH)
	}
}

func TestRouteBatch(t *testing.T) {
	d := 5
	res, err := RouteBatch(d, Greedy, 4, 6)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 4 {
		t.Fatalf("rounds = %d", res.Rounds)
	}
	if math.Abs(res.MeanRound*4-res.TotalTime) > 1e-9 {
		t.Fatal("mean round inconsistent with total")
	}
	// Each round of a random permutation takes at least a few steps and at
	// most O(d).
	if res.MeanRound < 2 || res.MeanRound > 4*float64(d) {
		t.Fatalf("mean round %v out of the expected range", res.MeanRound)
	}
}

func TestSchemeString(t *testing.T) {
	if Greedy.String() != "greedy" || Valiant.String() != "valiant" || Scheme(7).String() == "" {
		t.Fatal("scheme names wrong")
	}
}

func TestReproducible(t *testing.T) {
	a, err := RouteRandomPermutation(5, Valiant, 123)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RouteRandomPermutation(5, Valiant, 123)
	if err != nil {
		t.Fatal(err)
	}
	if a.Makespan != b.Makespan || a.TotalHops != b.TotalHops {
		t.Fatal("same seed gave different results")
	}
}

// Property: for any permutation of the 4-cube, greedy routing delivers every
// packet, the makespan is at least the maximum Hamming distance and at most
// the total number of hops.
func TestQuickGreedyPermutationBounds(t *testing.T) {
	d := 4
	n := 1 << uint(d)
	f := func(seed uint64) bool {
		rng := xrand.NewStream(seed, 0)
		perm := workload.Permutation(d, rng)
		res, err := RoutePermutation(d, perm, Greedy, seed)
		if err != nil {
			return false
		}
		maxH := 0
		totalH := int64(0)
		for x, z := range perm {
			h := hypercube.Hamming(hypercube.Node(x), z)
			totalH += int64(h)
			if h > maxH {
				maxH = h
			}
		}
		if res.TotalHops != totalH {
			return false
		}
		if res.Makespan < float64(maxH) {
			return false
		}
		return res.Makespan <= float64(totalH)+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
	_ = n
}

func BenchmarkGreedyPermutation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := RouteRandomPermutation(8, Greedy, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkValiantPermutation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := RouteRandomPermutation(8, Valiant, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}
