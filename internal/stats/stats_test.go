package stats

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/xrand"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestTallyBasic(t *testing.T) {
	var ta Tally
	for _, x := range []float64{1, 2, 3, 4, 5} {
		ta.Add(x)
	}
	if ta.Count() != 5 {
		t.Fatalf("count = %d", ta.Count())
	}
	if !almostEqual(ta.Mean(), 3, 1e-12) {
		t.Fatalf("mean = %v", ta.Mean())
	}
	if !almostEqual(ta.Variance(), 2.5, 1e-12) {
		t.Fatalf("variance = %v", ta.Variance())
	}
	if ta.Min() != 1 || ta.Max() != 5 {
		t.Fatalf("min/max = %v/%v", ta.Min(), ta.Max())
	}
	if !almostEqual(ta.Sum(), 15, 1e-12) {
		t.Fatalf("sum = %v", ta.Sum())
	}
}

func TestTallyEmpty(t *testing.T) {
	var ta Tally
	if ta.Mean() != 0 || ta.Variance() != 0 || ta.StdDev() != 0 || ta.StdError() != 0 {
		t.Fatal("empty tally should report zeros")
	}
}

func TestTallySingleObservation(t *testing.T) {
	var ta Tally
	ta.Add(7)
	if ta.Variance() != 0 {
		t.Fatalf("variance of single observation = %v", ta.Variance())
	}
	if ta.Min() != 7 || ta.Max() != 7 {
		t.Fatal("min/max wrong for single observation")
	}
}

func TestTallyMerge(t *testing.T) {
	var a, b, all Tally
	xs := []float64{3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5}
	for i, x := range xs {
		all.Add(x)
		if i%2 == 0 {
			a.Add(x)
		} else {
			b.Add(x)
		}
	}
	a.Merge(&b)
	if a.Count() != all.Count() {
		t.Fatalf("merged count %d want %d", a.Count(), all.Count())
	}
	if !almostEqual(a.Mean(), all.Mean(), 1e-12) {
		t.Fatalf("merged mean %v want %v", a.Mean(), all.Mean())
	}
	if !almostEqual(a.Variance(), all.Variance(), 1e-9) {
		t.Fatalf("merged variance %v want %v", a.Variance(), all.Variance())
	}
	if a.Min() != all.Min() || a.Max() != all.Max() {
		t.Fatal("merged min/max mismatch")
	}
}

func TestTallyMergeWithEmpty(t *testing.T) {
	var a, empty Tally
	a.Add(1)
	a.Add(2)
	before := a
	a.Merge(&empty)
	if a != before {
		t.Fatal("merging an empty tally changed the receiver")
	}
	var c Tally
	c.Merge(&a)
	if c.Count() != 2 || !almostEqual(c.Mean(), 1.5, 1e-12) {
		t.Fatal("merging into an empty tally lost data")
	}
}

func TestTallyConfidenceIntervalShrinks(t *testing.T) {
	rng := xrand.New(1)
	var small, large Tally
	for i := 0; i < 100; i++ {
		small.Add(rng.Float64())
	}
	for i := 0; i < 10000; i++ {
		large.Add(rng.Float64())
	}
	if large.ConfidenceInterval(0.95) >= small.ConfidenceInterval(0.95) {
		t.Fatal("confidence interval did not shrink with more samples")
	}
}

// Property: the Welford mean always lies between min and max.
// Inputs are mapped into a bounded range so the property is not confounded by
// float64 overflow, which the simulator's observation magnitudes never reach.
func TestQuickTallyMeanBounded(t *testing.T) {
	f := func(xs []int32) bool {
		var ta Tally
		for _, x := range xs {
			ta.Add(float64(x) / 1000)
		}
		if ta.Count() == 0 {
			return true
		}
		return ta.Mean() >= ta.Min()-1e-9 && ta.Mean() <= ta.Max()+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: variance is never negative (within floating-point tolerance).
func TestQuickTallyVarianceNonNegative(t *testing.T) {
	f := func(xs []int32) bool {
		var ta Tally
		for _, x := range xs {
			ta.Add(float64(x) / 1000)
		}
		return ta.Variance() >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestTimeWeightedConstant(t *testing.T) {
	var w TimeWeighted
	w.Set(0, 3)
	w.Advance(10)
	if !almostEqual(w.Mean(), 3, 1e-12) {
		t.Fatalf("mean of constant process = %v", w.Mean())
	}
}

func TestTimeWeightedStep(t *testing.T) {
	var w TimeWeighted
	w.Set(0, 0)
	w.Set(5, 10) // value 0 on [0,5), 10 on [5,10)
	w.Advance(10)
	if !almostEqual(w.Mean(), 5, 1e-12) {
		t.Fatalf("mean = %v, want 5", w.Mean())
	}
	if w.Max() != 10 {
		t.Fatalf("max = %v", w.Max())
	}
	if !almostEqual(w.Elapsed(), 10, 1e-12) {
		t.Fatalf("elapsed = %v", w.Elapsed())
	}
}

func TestTimeWeightedMeanAt(t *testing.T) {
	var w TimeWeighted
	w.Set(0, 2)
	w.Set(4, 6)
	// At time 8: 2 for 4 units, 6 for 4 units => mean 4.
	if !almostEqual(w.MeanAt(8), 4, 1e-12) {
		t.Fatalf("MeanAt(8) = %v", w.MeanAt(8))
	}
}

func TestTimeWeightedReset(t *testing.T) {
	var w TimeWeighted
	w.Set(0, 100)
	w.Advance(50)
	w.Reset(50, 1)
	w.Advance(60)
	if !almostEqual(w.Mean(), 1, 1e-12) {
		t.Fatalf("mean after reset = %v", w.Mean())
	}
}

func TestTimeWeightedBackwardsTimePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on backwards time")
		}
	}()
	var w TimeWeighted
	w.Set(10, 1)
	w.Set(5, 2)
}

func TestHistogramBasic(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	for i := 0; i < 10; i++ {
		h.Add(float64(i) + 0.5)
	}
	h.Add(-1)
	h.Add(42)
	if h.Count() != 12 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Underflow() != 1 || h.Overflow() != 1 {
		t.Fatalf("underflow/overflow = %d/%d", h.Underflow(), h.Overflow())
	}
	for i := 0; i < 10; i++ {
		if h.Bucket(i) != 1 {
			t.Fatalf("bucket %d = %d", i, h.Bucket(i))
		}
	}
	if h.NumBuckets() != 10 {
		t.Fatalf("NumBuckets = %d", h.NumBuckets())
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram(0, 100, 100)
	for i := 0; i < 1000; i++ {
		h.Add(float64(i % 100))
	}
	med := h.Quantile(0.5)
	if med < 45 || med > 55 {
		t.Fatalf("median = %v", med)
	}
	if h.Quantile(0) != 0 {
		t.Fatalf("q0 = %v", h.Quantile(0))
	}
	if h.Quantile(1) != 100 {
		t.Fatalf("q1 = %v", h.Quantile(1))
	}
}

func TestHistogramTailFraction(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	for i := 0; i < 100; i++ {
		h.Add(float64(i%10) + 0.5)
	}
	if got := h.TailFraction(5); !almostEqual(got, 0.5, 1e-9) {
		t.Fatalf("TailFraction(5) = %v", got)
	}
	if got := h.TailFraction(-3); got != 1 {
		t.Fatalf("TailFraction(-3) = %v", got)
	}
	if got := h.TailFraction(99); got != 0 {
		t.Fatalf("TailFraction(99) = %v", got)
	}
}

func TestHistogramEmptyQuantile(t *testing.T) {
	h := NewHistogram(0, 1, 4)
	if h.Quantile(0.5) != 0 {
		t.Fatal("quantile of empty histogram should be 0")
	}
	if h.TailFraction(0.5) != 0 {
		t.Fatal("tail of empty histogram should be 0")
	}
}

func TestHistogramPanicsOnBadArgs(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewHistogram(1, 0, 10)
}

func TestQuantilesExact(t *testing.T) {
	var q Quantiles
	for i := 100; i >= 1; i-- {
		q.Add(float64(i))
	}
	if q.Count() != 100 {
		t.Fatalf("count = %d", q.Count())
	}
	if got := q.Value(0); got != 1 {
		t.Fatalf("min = %v", got)
	}
	if got := q.Value(1); got != 100 {
		t.Fatalf("max = %v", got)
	}
	med := q.Value(0.5)
	if med < 50 || med > 51 {
		t.Fatalf("median = %v", med)
	}
}

func TestQuantilesEmpty(t *testing.T) {
	var q Quantiles
	if q.Value(0.5) != 0 {
		t.Fatal("empty quantiles should return 0")
	}
}

func TestQuantilesInterleavedAddAndQuery(t *testing.T) {
	var q Quantiles
	q.Add(5)
	q.Add(1)
	if q.Value(0) != 1 {
		t.Fatal("min wrong after first sort")
	}
	q.Add(0.5)
	if q.Value(0) != 0.5 {
		t.Fatal("min wrong after re-sort")
	}
}

func TestBatchMeans(t *testing.T) {
	bm := NewBatchMeans(10)
	rng := xrand.New(2)
	for i := 0; i < 1000; i++ {
		bm.Add(rng.Float64())
	}
	if bm.NumBatches() != 100 {
		t.Fatalf("batches = %d", bm.NumBatches())
	}
	if math.Abs(bm.Mean()-0.5) > 0.05 {
		t.Fatalf("mean = %v", bm.Mean())
	}
	if bm.HalfWidth(0.95) <= 0 {
		t.Fatal("half width should be positive")
	}
}

func TestBatchMeansPanicsOnBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewBatchMeans(0)
}

func TestLittleLawOnMD1LikeStream(t *testing.T) {
	// Construct a deterministic toy system: customers arrive every 2 time
	// units, stay exactly 1 unit. L = 0.5, lambda = 0.5, W = 1.
	var l LittleLaw
	l.Population.Set(0, 0)
	now := 0.0
	for i := 0; i < 1000; i++ {
		arrival := float64(i) * 2
		l.Population.Set(arrival, 1)
		l.Population.Set(arrival+1, 0)
		l.RecordDeparture(1)
		now = arrival + 2
		l.Population.Advance(now)
	}
	if err := l.RelativeError(now); err > 0.01 {
		t.Fatalf("Little's law relative error = %v", err)
	}
}

func TestLittleLawNoDepartures(t *testing.T) {
	var l LittleLaw
	l.Population.Set(0, 0)
	if l.RelativeError(10) != 0 {
		t.Fatal("expected zero error with no departures")
	}
}

func TestNormalQuantileSymmetry(t *testing.T) {
	for _, p := range []float64{0.6, 0.75, 0.9, 0.975, 0.995} {
		if !almostEqual(NormalQuantile(p), -NormalQuantile(1-p), 1e-6) {
			t.Fatalf("quantile not symmetric at %v", p)
		}
	}
	if !almostEqual(NormalQuantile(0.975), 1.959964, 1e-3) {
		t.Fatalf("q(0.975) = %v", NormalQuantile(0.975))
	}
	if !almostEqual(NormalQuantile(0.5), 0, 1e-9) {
		t.Fatalf("q(0.5) = %v", NormalQuantile(0.5))
	}
	if !math.IsInf(NormalQuantile(0), -1) || !math.IsInf(NormalQuantile(1), 1) {
		t.Fatal("extreme quantiles should be infinite")
	}
}

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Addn(4)
	if c.Value() != 5 {
		t.Fatalf("value = %d", c.Value())
	}
	if !almostEqual(c.Rate(10), 0.5, 1e-12) {
		t.Fatalf("rate = %v", c.Rate(10))
	}
	if c.Rate(0) != 0 {
		t.Fatal("rate with zero elapsed should be 0")
	}
}

func TestSeriesSlope(t *testing.T) {
	var s Series
	for i := 0; i < 10; i++ {
		s.AddPoint(float64(i), 2*float64(i)+1)
	}
	if !almostEqual(s.LinearSlope(), 2, 1e-9) {
		t.Fatalf("slope = %v", s.LinearSlope())
	}
	if s.Len() != 10 {
		t.Fatalf("len = %d", s.Len())
	}
	if !almostEqual(s.MaxY(), 19, 1e-12) {
		t.Fatalf("maxY = %v", s.MaxY())
	}
}

func TestSeriesSlopeDegenerate(t *testing.T) {
	var s Series
	if s.LinearSlope() != 0 {
		t.Fatal("slope of empty series should be 0")
	}
	s.AddPoint(1, 5)
	if s.LinearSlope() != 0 {
		t.Fatal("slope of single point should be 0")
	}
	s.AddPoint(1, 7) // identical x values
	if s.LinearSlope() != 0 {
		t.Fatal("slope with zero x-variance should be 0")
	}
}

func TestSeriesFlatSlopeNearZero(t *testing.T) {
	var s Series
	rng := xrand.New(3)
	for i := 0; i < 200; i++ {
		s.AddPoint(float64(i), 5+0.01*(rng.Float64()-0.5))
	}
	if math.Abs(s.LinearSlope()) > 1e-3 {
		t.Fatalf("slope of flat noisy series = %v", s.LinearSlope())
	}
}

func BenchmarkTallyAdd(b *testing.B) {
	var ta Tally
	for i := 0; i < b.N; i++ {
		ta.Add(float64(i & 1023))
	}
}

func BenchmarkTimeWeightedSet(b *testing.B) {
	var w TimeWeighted
	for i := 0; i < b.N; i++ {
		w.Set(float64(i), float64(i&7))
	}
}

func TestQuantilesQuickselectMatchesFullSort(t *testing.T) {
	// The first few Value calls use quickselect, later calls the cached full
	// sort; both must return identical exact order statistics.
	rng := xrand.New(99)
	var a, b Quantiles
	for i := 0; i < 10007; i++ {
		x := rng.Float64() * 1000
		a.Add(x)
		b.Add(x)
	}
	ps := []float64{0, 0.01, 0.25, 0.5, 0.9, 0.95, 0.99, 1}
	var fromSelect []float64
	for _, p := range ps[:4] {
		fromSelect = append(fromSelect, a.Value(p)) // quickselect regime
	}
	for i := 0; i < 10; i++ {
		b.Value(0.5) // force b into the sorted regime
	}
	for i, p := range ps[:4] {
		if got := b.Value(p); got != fromSelect[i] {
			t.Fatalf("p=%v: quickselect %v != sorted %v", p, fromSelect[i], got)
		}
	}
	for _, p := range ps[4:] {
		if got, want := a.Value(p), b.Value(p); got != want {
			t.Fatalf("p=%v: %v != %v (a crossed into sorted regime)", p, got, want)
		}
	}
}
