package stats

import (
	"math"
	"testing"
)

// TestTallyEdgeCases table-tests the degenerate inputs every Tally consumer
// must survive: no observations, a single observation, and a single value
// repeated (zero variance — including after merges, where the pooled update
// can round a mathematically zero m2 to a tiny negative float).
func TestTallyEdgeCases(t *testing.T) {
	build := func(xs ...float64) *Tally {
		tl := &Tally{}
		for _, x := range xs {
			tl.Add(x)
		}
		return tl
	}
	cases := []struct {
		name                     string
		tally                    *Tally
		n                        int64
		mean, variance, min, max float64
		stdErr, ci95             float64
	}{
		{"n=0", build(), 0, 0, 0, 0, 0, 0, 0},
		{"n=1", build(3.5), 1, 3.5, 0, 3.5, 3.5, 0, 0},
		{"n=1 negative", build(-2), 1, -2, 0, -2, -2, 0, 0},
		{"repeated value", build(7, 7, 7, 7, 7), 5, 7, 0, 7, 7, 0, 0},
		{"repeated zero", build(0, 0, 0), 3, 0, 0, 0, 0, 0, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := tc.tally
			if got.Count() != tc.n {
				t.Errorf("Count = %d, want %d", got.Count(), tc.n)
			}
			checks := []struct {
				name string
				got  float64
				want float64
			}{
				{"Mean", got.Mean(), tc.mean},
				{"Variance", got.Variance(), tc.variance},
				{"StdDev", got.StdDev(), math.Sqrt(tc.variance)},
				{"Min", got.Min(), tc.min},
				{"Max", got.Max(), tc.max},
				{"StdError", got.StdError(), tc.stdErr},
				{"CI95", got.ConfidenceInterval(0.95), tc.ci95},
			}
			for _, c := range checks {
				if c.got != c.want {
					t.Errorf("%s = %v, want %v", c.name, c.got, c.want)
				}
				if math.IsNaN(c.got) {
					t.Errorf("%s is NaN", c.name)
				}
			}
		})
	}
}

// TestTallyMergeRepeatedValueNeverNegative pins the Variance clamp: merging
// many single-repeated-value tallies must never report a negative variance or
// a NaN standard deviation, however the floating-point rounding falls.
func TestTallyMergeRepeatedValueNeverNegative(t *testing.T) {
	for _, v := range []float64{0.1, 1.0 / 3.0, 7e-9, 1e17} {
		merged := &Tally{}
		for i := 0; i < 100; i++ {
			part := &Tally{}
			for j := 0; j < 3; j++ {
				part.Add(v)
			}
			merged.Merge(part)
		}
		if got := merged.Variance(); got < 0 {
			t.Errorf("v=%v: negative variance %v", v, got)
		}
		if sd := merged.StdDev(); math.IsNaN(sd) {
			t.Errorf("v=%v: StdDev is NaN", v)
		}
		if got := merged.Mean(); math.Abs(got-v)/v > 1e-12 {
			t.Errorf("v=%v: merged mean %v", v, got)
		}
	}
}

// TestTallyMergeEdges covers merges involving empty tallies.
func TestTallyMergeEdges(t *testing.T) {
	a := &Tally{}
	b := &Tally{}
	a.Merge(b) // empty into empty
	if a.Count() != 0 || a.Variance() != 0 {
		t.Fatalf("empty merge: %v", a)
	}
	b.Add(2)
	b.Add(4)
	a.Merge(b) // into empty: adopts
	if a.Count() != 2 || a.Mean() != 3 || a.Min() != 2 || a.Max() != 4 {
		t.Fatalf("merge into empty: %v", a)
	}
	a.Merge(&Tally{}) // empty into non-empty: no-op
	if a.Count() != 2 || a.Mean() != 3 {
		t.Fatalf("no-op merge changed state: %v", a)
	}
}

// TestQuantilesEdgeCases covers the stored-sample estimator on n=0, n=1 and
// constant samples.
func TestQuantilesEdgeCases(t *testing.T) {
	var q Quantiles
	for _, p := range []float64{0, 0.5, 1} {
		if got := q.Value(p); got != 0 {
			t.Errorf("empty sample: Value(%v) = %v, want 0", p, got)
		}
	}
	q.Add(9)
	for _, p := range []float64{0, 0.31, 0.5, 1} {
		if got := q.Value(p); got != 9 {
			t.Errorf("n=1: Value(%v) = %v, want 9", p, got)
		}
	}
	q.Reset()
	for i := 0; i < 10; i++ {
		q.Add(4)
	}
	for _, p := range []float64{0, 0.499, 0.5, 0.999, 1} {
		if got := q.Value(p); got != 4 {
			t.Errorf("constant sample: Value(%v) = %v, want 4", p, got)
		}
	}
}

// TestHistogramEdgeCases covers the empty histogram and single-observation
// quantiles.
func TestHistogramEdgeCases(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	if got := h.Quantile(0.5); got != 0 {
		t.Errorf("empty histogram Quantile = %v, want 0", got)
	}
	if got := h.TailFraction(3); got != 0 {
		t.Errorf("empty histogram TailFraction = %v, want 0", got)
	}
	h.Add(4)
	if got := h.Quantile(1); got != 10 {
		t.Errorf("Quantile(1) = %v, want hi", got)
	}
	if got := h.TailFraction(0); got != 1 {
		t.Errorf("TailFraction(0) = %v, want 1", got)
	}
}

// TestBatchMeansEdgeCases covers the collector before any batch completes and
// with a single batch (no confidence interval is defined until two).
func TestBatchMeansEdgeCases(t *testing.T) {
	b := NewBatchMeans(4)
	if b.NumBatches() != 0 || b.Mean() != 0 || b.HalfWidth(0.95) != 0 {
		t.Fatalf("fresh collector: batches=%d mean=%v hw=%v", b.NumBatches(), b.Mean(), b.HalfWidth(0.95))
	}
	for i := 0; i < 4; i++ {
		b.Add(2)
	}
	if b.NumBatches() != 1 || b.Mean() != 2 {
		t.Fatalf("one batch: batches=%d mean=%v", b.NumBatches(), b.Mean())
	}
	if hw := b.HalfWidth(0.95); hw != 0 || math.IsNaN(hw) {
		t.Fatalf("one batch: half width %v, want 0", hw)
	}
}
