package stats

import (
	"encoding/binary"
	"fmt"
	"math"
)

// SketchMinValue is the smallest positive value the sketch's logarithmic
// buckets resolve. Observations at or below it (zero-slot deliveries, for
// example) are counted in a dedicated zero bucket and reported as the exact
// sketch minimum, with absolute error at most SketchMinValue instead of a
// relative guarantee — a relative bound is meaningless at zero.
const SketchMinValue = 1e-9

// sketchGrowPad is the slack added on each side when the bucket array has to
// cover a new key, so a value stream that creeps across bucket boundaries
// reallocates O(log n) times, not per observation. Together with the
// doubling append below it makes Add allocation-free in steady state.
const sketchGrowPad = 16

// DDSketch is a mergeable quantile sketch with a guaranteed relative error:
// Quantile(q) returns a value within a factor (1 ± Alpha) of an exact
// empirical q-quantile, using O(log(max/min)/Alpha) memory instead of one
// float per observation. Buckets are logarithmic — bucket k holds values in
// (gamma^(k-1), gamma^k] with gamma = (1+Alpha)/(1-Alpha) — so the bucket
// midpoint (in log space) is within Alpha of every value in the bucket.
//
// The sketch is built for this repository's determinism contract:
//
//   - Add is allocation-free in steady state (the bucket array grows only
//     when the observed value range does), so it can sit on the kernels'
//     delivery hot path next to the Welford tallies.
//   - Merge adds integer bucket counts, so it is exact, associative and
//     commutative: merging shard sketches in any order yields bit-identical
//     state, which MarshalBinary exposes in a canonical form the property
//     tests compare.
//   - Quantile walks integer counts; for a given set of observations the
//     answer is a pure function of the multiset, never of arrival or merge
//     order.
//
// The zero value is not usable; construct with NewDDSketch or Reset.
type DDSketch struct {
	alpha    float64
	gamma    float64
	logGamma float64

	count uint64
	zeros uint64
	min   float64
	max   float64

	// buckets[i] counts values with key minKey+i; key(x) = ceil(log_gamma x).
	minKey  int32
	buckets []uint64
}

// NewDDSketch returns a sketch with the given relative-error bound alpha,
// which must lie in (0, 0.5).
func NewDDSketch(alpha float64) *DDSketch {
	s := new(DDSketch)
	s.Reset(alpha)
	return s
}

// Reset re-initialises the sketch for relative error alpha (in (0, 0.5)),
// keeping the backing bucket array so pooled collectors do not reallocate.
func (s *DDSketch) Reset(alpha float64) {
	if !(alpha > 0 && alpha < 0.5) {
		panic(fmt.Sprintf("stats: DDSketch alpha %v outside (0, 0.5)", alpha))
	}
	s.alpha = alpha
	s.gamma = (1 + alpha) / (1 - alpha)
	s.logGamma = math.Log(s.gamma)
	s.Clear()
}

// Clear empties the sketch, keeping its alpha and backing storage.
func (s *DDSketch) Clear() {
	s.count = 0
	s.zeros = 0
	s.min = 0
	s.max = 0
	s.minKey = 0
	for i := range s.buckets {
		s.buckets[i] = 0
	}
	s.buckets = s.buckets[:0]
}

// Alpha returns the sketch's relative-error bound.
func (s *DDSketch) Alpha() float64 { return s.alpha }

// Count returns the number of observations recorded.
func (s *DDSketch) Count() int64 { return int64(s.count) }

// Min and Max return the exact extreme observations (0 if none).
func (s *DDSketch) Min() float64 { return s.min }
func (s *DDSketch) Max() float64 { return s.max }

// key returns the bucket key of a value above SketchMinValue.
func (s *DDSketch) key(x float64) int32 {
	return int32(math.Ceil(math.Log(x) / s.logGamma))
}

// Add records one observation. Values at or below SketchMinValue (including
// zero) land in the zero bucket; everything else lands in its logarithmic
// bucket. Steady-state calls perform no allocation.
func (s *DDSketch) Add(x float64) {
	s.count++
	if s.count == 1 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	if x <= SketchMinValue {
		s.zeros++
		return
	}
	k := s.key(x)
	i := int(k - s.minKey)
	if len(s.buckets) == 0 || i < 0 || i >= len(s.buckets) {
		i = s.growTo(k)
	}
	s.buckets[i]++
}

// growTo extends the bucket array to cover key k (with padding on the grown
// side) and returns k's index. It preserves existing counts.
func (s *DDSketch) growTo(k int32) int {
	if len(s.buckets) == 0 {
		s.minKey = k - sketchGrowPad
		n := 2*sketchGrowPad + 1
		if cap(s.buckets) < n {
			s.buckets = make([]uint64, n)
		} else {
			s.buckets = s.buckets[:n]
			for i := range s.buckets {
				s.buckets[i] = 0
			}
		}
		return int(k - s.minKey)
	}
	if k < s.minKey {
		newMin := k - sketchGrowPad
		shift := int(s.minKey - newMin)
		old := len(s.buckets)
		s.buckets = append(s.buckets, make([]uint64, shift)...)
		copy(s.buckets[shift:], s.buckets[:old])
		for i := 0; i < shift; i++ {
			s.buckets[i] = 0
		}
		s.minKey = newMin
	} else if need := int(k-s.minKey) + 1; need > len(s.buckets) {
		s.buckets = append(s.buckets, make([]uint64, need+sketchGrowPad-len(s.buckets))...)
	}
	return int(k - s.minKey)
}

// Merge folds another sketch into s, as if s had observed both streams. The
// two sketches must share the same alpha (merging sketches with different
// bucket bases has no exact meaning). Because bucket counts are integers,
// Merge is exact: any merge order over any partition of the observations
// produces bit-identical state.
func (s *DDSketch) Merge(o *DDSketch) {
	if o == nil || o.count == 0 {
		return
	}
	if s.alpha == 0 {
		// Unconfigured receiver adopts the other sketch's resolution.
		s.Reset(o.alpha)
	}
	if s.alpha != o.alpha {
		panic(fmt.Sprintf("stats: cannot merge DDSketch alpha %v into alpha %v", o.alpha, s.alpha))
	}
	if s.count == 0 {
		s.min, s.max = o.min, o.max
	} else {
		if o.min < s.min {
			s.min = o.min
		}
		if o.max > s.max {
			s.max = o.max
		}
	}
	s.count += o.count
	s.zeros += o.zeros
	lo, hi, ok := o.nonZeroRange()
	if !ok {
		return
	}
	s.growTo(o.minKey + int32(lo))
	s.growTo(o.minKey + int32(hi))
	base := int(o.minKey - s.minKey)
	for i := lo; i <= hi; i++ {
		s.buckets[base+i] += o.buckets[i]
	}
}

// Clone returns an independent copy of the sketch.
func (s *DDSketch) Clone() *DDSketch {
	c := *s
	c.buckets = append([]uint64(nil), s.buckets...)
	return &c
}

// nonZeroRange returns the index range [lo, hi] of occupied buckets.
func (s *DDSketch) nonZeroRange() (lo, hi int, ok bool) {
	lo, hi = 0, len(s.buckets)-1
	for lo < len(s.buckets) && s.buckets[lo] == 0 {
		lo++
	}
	if lo == len(s.buckets) {
		return 0, 0, false
	}
	for s.buckets[hi] == 0 {
		hi--
	}
	return lo, hi, true
}

// Quantile returns an estimate of the q-quantile (q clamped to [0, 1]) with
// guaranteed relative error: the returned value v satisfies |v - x| <=
// Alpha*x for the exact empirical quantile x (the order statistic of rank
// floor(q*(Count-1))) whenever x > SketchMinValue; ranks that fall in the
// zero bucket return the exact minimum. The estimate is clamped to the exact
// observed [Min, Max]. An empty sketch returns NaN.
func (s *DDSketch) Quantile(q float64) float64 {
	if s.count == 0 {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	rank := q * float64(s.count-1)
	cum := float64(s.zeros)
	if cum > rank {
		return s.min
	}
	for i, c := range s.buckets {
		if c == 0 {
			continue
		}
		cum += float64(c)
		if cum > rank {
			k := float64(int32(i) + s.minKey)
			v := 2 * math.Exp(k*s.logGamma) / (1 + s.gamma)
			if v < s.min {
				v = s.min
			}
			if v > s.max {
				v = s.max
			}
			return v
		}
	}
	return s.max
}

// MarshalBinary serialises the sketch in a canonical little-endian form:
// leading and trailing empty buckets are trimmed, so two sketches holding the
// same observation multiset — however they were split, added and merged —
// produce byte-identical encodings. The property tests pin exactly this.
func (s *DDSketch) MarshalBinary() ([]byte, error) {
	return s.AppendBinary(nil), nil
}

// AppendBinary appends the canonical encoding to dst (see MarshalBinary).
func (s *DDSketch) AppendBinary(dst []byte) []byte {
	var u [8]byte
	put64 := func(v uint64) {
		binary.LittleEndian.PutUint64(u[:], v)
		dst = append(dst, u[:]...)
	}
	put64(math.Float64bits(s.alpha))
	put64(s.count)
	put64(s.zeros)
	put64(math.Float64bits(s.min))
	put64(math.Float64bits(s.max))
	lo, hi, ok := s.nonZeroRange()
	if !ok {
		put64(0) // firstKey
		put64(0) // bucket count
		return dst
	}
	put64(uint64(int64(s.minKey) + int64(lo)))
	put64(uint64(hi - lo + 1))
	for i := lo; i <= hi; i++ {
		put64(s.buckets[i])
	}
	return dst
}

// UnmarshalBinary restores a sketch from its MarshalBinary encoding.
func (s *DDSketch) UnmarshalBinary(data []byte) error {
	const header = 7 * 8
	if len(data) < header {
		return fmt.Errorf("stats: DDSketch encoding too short (%d bytes)", len(data))
	}
	get64 := func(i int) uint64 { return binary.LittleEndian.Uint64(data[8*i:]) }
	alpha := math.Float64frombits(get64(0))
	if !(alpha > 0 && alpha < 0.5) {
		return fmt.Errorf("stats: DDSketch encoding has alpha %v outside (0, 0.5)", alpha)
	}
	n := get64(6)
	if uint64(len(data)-header) != 8*n {
		return fmt.Errorf("stats: DDSketch encoding length %d does not match %d buckets", len(data), n)
	}
	s.Reset(alpha)
	s.count = get64(1)
	s.zeros = get64(2)
	s.min = math.Float64frombits(get64(3))
	s.max = math.Float64frombits(get64(4))
	if n == 0 {
		return nil
	}
	s.minKey = int32(int64(get64(5)))
	if cap(s.buckets) < int(n) {
		s.buckets = make([]uint64, n)
	} else {
		s.buckets = s.buckets[:n]
	}
	for i := range s.buckets {
		s.buckets[i] = binary.LittleEndian.Uint64(data[header+8*i:])
	}
	return nil
}

// String summarises the sketch for human-readable reports.
func (s *DDSketch) String() string {
	return fmt.Sprintf("ddsketch(alpha=%g n=%d min=%g max=%g)", s.alpha, s.count, s.min, s.max)
}
