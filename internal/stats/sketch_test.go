package stats

import (
	"bytes"
	"math"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/xrand"
)

// sketchTestDistributions are the adversarial value streams the relative-error
// and merge properties are checked on: heavy-tailed (Pareto-like), constant
// (every value in one bucket), bimodal (two far-apart clusters), a stream
// containing exact zeros, and uniform delays in the simulators' typical range.
var sketchTestDistributions = []struct {
	name string
	gen  func(rng *xrand.Rand) float64
}{
	{"heavy-tailed", func(rng *xrand.Rand) float64 {
		// Pareto with tail index 1.1: p999 is orders of magnitude above p50.
		return math.Pow(1-rng.Float64(), -1/1.1)
	}},
	{"constant", func(rng *xrand.Rand) float64 { return 42.5 }},
	{"bimodal", func(rng *xrand.Rand) float64 {
		if rng.Float64() < 0.7 {
			return 1 + rng.Float64()
		}
		return 1e4 + 1e3*rng.Float64()
	}},
	{"with-zeros", func(rng *xrand.Rand) float64 {
		if rng.Float64() < 0.1 {
			return 0
		}
		return 1 + 10*rng.Float64()
	}},
	{"uniform-delays", func(rng *xrand.Rand) float64 { return 1 + 99*rng.Float64() }},
}

// TestDDSketchRelativeErrorGuarantee checks the documented bound: for every
// queried quantile, the estimate is within alpha of the exact order statistic
// of rank floor(q*(n-1)) — and exact (up to SketchMinValue) for ranks in the
// zero bucket.
func TestDDSketchRelativeErrorGuarantee(t *testing.T) {
	quantiles := []float64{0, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 0.999, 1}
	for _, alpha := range []float64{0.01, 0.05} {
		for _, dist := range sketchTestDistributions {
			rng := xrand.NewStream(7, 0x5EED)
			s := NewDDSketch(alpha)
			xs := make([]float64, 0, 20000)
			for i := 0; i < 20000; i++ {
				x := dist.gen(rng)
				s.Add(x)
				xs = append(xs, x)
			}
			sort.Float64s(xs)
			for _, q := range quantiles {
				got := s.Quantile(q)
				exact := xs[int(q*float64(len(xs)-1))]
				if exact <= SketchMinValue {
					if math.Abs(got-exact) > SketchMinValue {
						t.Errorf("%s alpha=%v q=%v: zero-bucket estimate %v vs exact %v", dist.name, alpha, q, got, exact)
					}
					continue
				}
				// A value exactly on a bucket boundary may round into the
				// neighbouring bucket, whose estimate still meets the alpha
				// bound up to floating-point slop.
				if relErr := math.Abs(got-exact) / exact; relErr > alpha*(1+1e-9)+1e-12 {
					t.Errorf("%s alpha=%v q=%v: estimate %v vs exact %v (rel err %v > %v)",
						dist.name, alpha, q, got, exact, relErr, alpha)
				}
			}
		}
	}
}

// TestDDSketchMergePartitionInvariance is the core merge property: splitting
// one observation stream into arbitrarily many parts, adding each part to its
// own sketch and merging the parts in an arbitrary tree order produces state
// byte-identical to the sequential sketch. This covers associativity and
// commutativity at once (every merge tree is some parenthesisation of some
// permutation).
func TestDDSketchMergePartitionInvariance(t *testing.T) {
	const alpha = 0.02
	property := func(seed uint64, nParts uint8, swap bool) bool {
		rng := xrand.NewStream(seed, 99)
		dist := sketchTestDistributions[int(seed%uint64(len(sketchTestDistributions)))]
		n := 500 + int(seed%1500)
		parts := int(nParts)%7 + 2

		whole := NewDDSketch(alpha)
		split := make([]*DDSketch, parts)
		for i := range split {
			split[i] = NewDDSketch(alpha)
		}
		for i := 0; i < n; i++ {
			x := dist.gen(rng)
			whole.Add(x)
			// Deterministic but irregular part assignment.
			split[(i*2654435761)%parts].Add(x)
		}

		// Merge the parts pairwise in a tree whose shape depends on swap, to
		// exercise different association orders; commutativity is exercised by
		// reversing the list.
		list := split
		if swap {
			for i, j := 0, len(list)-1; i < j; i, j = i+1, j-1 {
				list[i], list[j] = list[j], list[i]
			}
		}
		for len(list) > 1 {
			next := make([]*DDSketch, 0, (len(list)+1)/2)
			for i := 0; i+1 < len(list); i += 2 {
				list[i].Merge(list[i+1])
				next = append(next, list[i])
			}
			if len(list)%2 == 1 {
				next = append(next, list[len(list)-1])
			}
			list = next
		}
		return bytes.Equal(list[0].AppendBinary(nil), whole.AppendBinary(nil))
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestDDSketchMergeEmptyAndUnconfigured pins the edge semantics: merging an
// empty sketch is a no-op, merging into an unconfigured (zero-alpha) sketch
// adopts the source's resolution, and merging mismatched alphas panics.
func TestDDSketchMergeEmptyAndUnconfigured(t *testing.T) {
	a := NewDDSketch(0.01)
	a.Add(3)
	before := a.AppendBinary(nil)
	a.Merge(NewDDSketch(0.01))
	a.Merge(nil)
	if !bytes.Equal(a.AppendBinary(nil), before) {
		t.Fatal("merging an empty or nil sketch changed the state")
	}

	var adopt DDSketch
	adopt.Merge(a)
	if adopt.Alpha() != 0.01 || adopt.Count() != 1 {
		t.Fatalf("unconfigured merge: alpha=%v count=%d", adopt.Alpha(), adopt.Count())
	}
	if !bytes.Equal(adopt.AppendBinary(nil), before) {
		t.Fatal("unconfigured merge is not byte-identical to the source")
	}

	defer func() {
		if recover() == nil {
			t.Fatal("merging mismatched alphas did not panic")
		}
	}()
	b := NewDDSketch(0.05)
	b.Add(1)
	a.Merge(b)
}

// TestDDSketchBinaryRoundTrip checks UnmarshalBinary(MarshalBinary(s))
// restores byte-identical state across the test distributions.
func TestDDSketchBinaryRoundTrip(t *testing.T) {
	for _, dist := range sketchTestDistributions {
		rng := xrand.NewStream(3, 17)
		s := NewDDSketch(0.01)
		for i := 0; i < 2000; i++ {
			s.Add(dist.gen(rng))
		}
		enc, err := s.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		var back DDSketch
		if err := back.UnmarshalBinary(enc); err != nil {
			t.Fatalf("%s: %v", dist.name, err)
		}
		if !bytes.Equal(back.AppendBinary(nil), enc) {
			t.Fatalf("%s: round trip is not byte-identical", dist.name)
		}
		for _, q := range []float64{0, 0.5, 0.99, 1} {
			if got, want := back.Quantile(q), s.Quantile(q); got != want {
				t.Fatalf("%s: quantile %v differs after round trip: %v vs %v", dist.name, q, got, want)
			}
		}
	}

	var s DDSketch
	if err := s.UnmarshalBinary([]byte("short")); err == nil {
		t.Fatal("truncated encoding did not error")
	}
}

// TestDDSketchEmptyAndClear pins the empty-sketch contract (NaN quantiles,
// zero count) and that Clear empties without changing alpha.
func TestDDSketchEmptyAndClear(t *testing.T) {
	s := NewDDSketch(0.01)
	if !math.IsNaN(s.Quantile(0.5)) {
		t.Fatal("empty sketch quantile is not NaN")
	}
	s.Add(5)
	s.Add(7)
	s.Clear()
	if s.Count() != 0 || s.Alpha() != 0.01 || !math.IsNaN(s.Quantile(0.99)) {
		t.Fatalf("Clear left count=%d alpha=%v", s.Count(), s.Alpha())
	}
	empty := NewDDSketch(0.01)
	if !bytes.Equal(s.AppendBinary(nil), empty.AppendBinary(nil)) {
		t.Fatal("cleared sketch encoding differs from a fresh sketch")
	}
}

// TestDDSketchAddZeroAllocs pins the hot-path contract in the style of
// slotsim.TestMillionNodeSteadyStateZeroAllocs: once the sketch has seen the
// value range, further Adds perform no allocation at all.
func TestDDSketchAddZeroAllocs(t *testing.T) {
	s := NewDDSketch(0.01)
	rng := xrand.NewStream(11, 5)
	// Warm the bucket range: values spanning the full range the measurement
	// loop below will produce, plus the zero bucket.
	s.Add(0)
	s.Add(0.5)
	s.Add(2000)
	xs := make([]float64, 4096)
	for i := range xs {
		xs[i] = 1 + 1000*rng.Float64()
	}
	i := 0
	allocs := testing.AllocsPerRun(10, func() {
		for k := 0; k < 256; k++ {
			s.Add(xs[i%len(xs)])
			i++
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state Add allocates: %v allocs per 256 observations", allocs)
	}
}

// TestDDSketchInvalidAlpha pins the constructor contract.
func TestDDSketchInvalidAlpha(t *testing.T) {
	for _, alpha := range []float64{0, -0.1, 0.5, 1, math.NaN()} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("alpha %v did not panic", alpha)
				}
			}()
			NewDDSketch(alpha)
		}()
	}
}
