// Package stats provides the streaming statistics used by the routing
// simulator: running means and variances (Welford's algorithm), time-weighted
// averages for queue-length processes, histograms, exact stored-sample
// quantiles (Quantiles), a mergeable relative-error quantile sketch
// (DDSketch), batch-means confidence intervals and a Little's-law
// consistency checker.
//
// All collectors are plain value types with pointer receivers; none of them
// allocate per observation, so they can be updated on the simulator's hot
// path (one update per packet event) without disturbing the measured system.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Tally accumulates scalar observations and reports their running mean,
// variance, minimum and maximum using Welford's numerically stable update.
type Tally struct {
	n    int64
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add records one observation.
func (t *Tally) Add(x float64) {
	t.n++
	if t.n == 1 {
		t.min, t.max = x, x
	} else {
		if x < t.min {
			t.min = x
		}
		if x > t.max {
			t.max = x
		}
	}
	delta := x - t.mean
	t.mean += delta / float64(t.n)
	t.m2 += delta * (x - t.mean)
}

// Count returns the number of observations recorded.
func (t *Tally) Count() int64 { return t.n }

// Mean returns the sample mean, or 0 if no observations were recorded.
func (t *Tally) Mean() float64 { return t.mean }

// Sum returns the sum of all observations.
func (t *Tally) Sum() float64 { return t.mean * float64(t.n) }

// Variance returns the unbiased sample variance (n-1 denominator), or 0 for
// fewer than two observations. The result is clamped at zero: Welford's m2
// is non-negative term by term, but Merge's pooled update can round a
// mathematically zero m2 to a tiny negative float, and a negative variance
// would surface as a NaN standard deviation.
func (t *Tally) Variance() float64 {
	if t.n < 2 || t.m2 <= 0 {
		return 0
	}
	return t.m2 / float64(t.n-1)
}

// StdDev returns the sample standard deviation.
func (t *Tally) StdDev() float64 { return math.Sqrt(t.Variance()) }

// Min returns the smallest observation (0 if none).
func (t *Tally) Min() float64 { return t.min }

// Max returns the largest observation (0 if none).
func (t *Tally) Max() float64 { return t.max }

// StdError returns the standard error of the mean.
func (t *Tally) StdError() float64 {
	if t.n < 2 {
		return 0
	}
	return t.StdDev() / math.Sqrt(float64(t.n))
}

// ConfidenceInterval returns the half-width of an approximate two-sided
// normal confidence interval at the given level (e.g. 0.95). For small
// sample counts the normal quantile slightly understates the width; the
// simulator always works with thousands of observations.
func (t *Tally) ConfidenceInterval(level float64) float64 {
	return normalQuantile(0.5+level/2) * t.StdError()
}

// Merge folds another Tally into t, as if t had observed both streams.
func (t *Tally) Merge(o *Tally) {
	if o.n == 0 {
		return
	}
	if t.n == 0 {
		*t = *o
		return
	}
	n1, n2 := float64(t.n), float64(o.n)
	delta := o.mean - t.mean
	total := n1 + n2
	t.m2 += o.m2 + delta*delta*n1*n2/total
	t.mean += delta * n2 / total
	t.n += o.n
	if o.min < t.min {
		t.min = o.min
	}
	if o.max > t.max {
		t.max = o.max
	}
}

// String summarises the tally for human-readable reports.
func (t *Tally) String() string {
	return fmt.Sprintf("n=%d mean=%.4f sd=%.4f min=%.4f max=%.4f",
		t.n, t.Mean(), t.StdDev(), t.min, t.max)
}

// TimeWeighted tracks a piecewise-constant process (for example a queue
// length) and reports its time-averaged value. Observations are pushed as
// (time, newValue) pairs; the value is assumed to hold until the next update.
type TimeWeighted struct {
	started   bool
	startTime float64
	lastTime  float64
	lastValue float64
	area      float64
	maxValue  float64
}

// Set records that the tracked process takes value v from time now onwards.
// Calls must have non-decreasing time stamps. The common case is small
// enough to inline into the simulators' per-hop hot path; initialisation and
// the went-backwards panic live in setSlow.
func (w *TimeWeighted) Set(now, v float64) {
	if !w.started || now < w.lastTime {
		w.setSlow(now, v)
		return
	}
	w.area += w.lastValue * (now - w.lastTime)
	w.lastTime = now
	w.lastValue = v
	if v > w.maxValue {
		w.maxValue = v
	}
}

func (w *TimeWeighted) setSlow(now, v float64) {
	if w.started {
		panic(fmt.Sprintf("stats: TimeWeighted.Set time went backwards: %v < %v", now, w.lastTime))
	}
	w.started = true
	w.startTime = now
	w.lastTime = now
	w.lastValue = v
	w.maxValue = v
}

// Advance extends the current value to time now without changing it.
func (w *TimeWeighted) Advance(now float64) { w.Set(now, w.lastValue) }

// Add shifts the tracked value by delta at time now; it is the fused
// Set(now, Current()+delta) used on the simulator's per-hop hot path.
func (w *TimeWeighted) Add(now, delta float64) { w.Set(now, w.lastValue+delta) }

// Mean returns the time-average of the process over [start, lastTime].
func (w *TimeWeighted) Mean() float64 {
	elapsed := w.lastTime - w.startTime
	if elapsed <= 0 {
		return w.lastValue
	}
	return w.area / elapsed
}

// MeanAt returns the time-average including the segment up to time now.
func (w *TimeWeighted) MeanAt(now float64) float64 {
	if !w.started || now <= w.startTime {
		return w.lastValue
	}
	area := w.area + w.lastValue*(now-w.lastTime)
	return area / (now - w.startTime)
}

// Current returns the most recently set value.
func (w *TimeWeighted) Current() float64 { return w.lastValue }

// Max returns the largest value observed.
func (w *TimeWeighted) Max() float64 { return w.maxValue }

// Elapsed returns the observation window length.
func (w *TimeWeighted) Elapsed() float64 { return w.lastTime - w.startTime }

// Reset restarts the collector at time now with value v, discarding history.
// It is used to discard the warm-up transient.
func (w *TimeWeighted) Reset(now, v float64) {
	w.started = true
	w.startTime = now
	w.lastTime = now
	w.lastValue = v
	w.area = 0
	w.maxValue = v
}

// Histogram is a fixed-width bucket histogram over [lo, hi) with overflow and
// underflow buckets.
type Histogram struct {
	lo, hi    float64
	width     float64
	buckets   []int64
	underflow int64
	overflow  int64
	total     int64
}

// NewHistogram creates a histogram with n equal buckets spanning [lo, hi).
func NewHistogram(lo, hi float64, n int) *Histogram {
	if n <= 0 || hi <= lo {
		panic("stats: NewHistogram requires n > 0 and hi > lo")
	}
	return &Histogram{lo: lo, hi: hi, width: (hi - lo) / float64(n), buckets: make([]int64, n)}
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	h.total++
	switch {
	case x < h.lo:
		h.underflow++
	case x >= h.hi:
		h.overflow++
	default:
		i := int((x - h.lo) / h.width)
		if i >= len(h.buckets) {
			i = len(h.buckets) - 1
		}
		h.buckets[i]++
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 { return h.total }

// Bucket returns the count in bucket i.
func (h *Histogram) Bucket(i int) int64 { return h.buckets[i] }

// NumBuckets returns the number of regular buckets.
func (h *Histogram) NumBuckets() int { return len(h.buckets) }

// Underflow and Overflow return the out-of-range counts.
func (h *Histogram) Underflow() int64 { return h.underflow }
func (h *Histogram) Overflow() int64  { return h.overflow }

// Quantile returns an approximation of the q-quantile (0 <= q <= 1) by
// linear interpolation within the containing bucket. Underflow mass is
// attributed to lo and overflow mass to hi.
func (h *Histogram) Quantile(q float64) float64 {
	if h.total == 0 {
		return 0
	}
	if q <= 0 {
		return h.lo
	}
	if q >= 1 {
		return h.hi
	}
	target := q * float64(h.total)
	cum := float64(h.underflow)
	if target <= cum {
		return h.lo
	}
	for i, c := range h.buckets {
		next := cum + float64(c)
		if target <= next && c > 0 {
			frac := (target - cum) / float64(c)
			return h.lo + (float64(i)+frac)*h.width
		}
		cum = next
	}
	return h.hi
}

// TailFraction returns the fraction of observations that are >= x.
func (h *Histogram) TailFraction(x float64) float64 {
	if h.total == 0 {
		return 0
	}
	var count int64
	if x < h.lo {
		return 1
	}
	count += h.overflow
	start := int((x - h.lo) / h.width)
	for i := start; i < len(h.buckets); i++ {
		if i < 0 {
			continue
		}
		count += h.buckets[i]
	}
	return float64(count) / float64(h.total)
}

// Quantiles computes exact empirical quantiles from a stored sample. It is
// used where full per-packet samples are cheap to keep (small experiments).
type Quantiles struct {
	xs      []float64
	sorted  bool
	selects int // quickselect calls since the last full sort
}

// Add appends an observation.
func (q *Quantiles) Add(x float64) {
	q.xs = append(q.xs, x)
	q.sorted = false
}

// Count returns the number of stored observations.
func (q *Quantiles) Count() int { return len(q.xs) }

// Values returns the stored observations. The slice aliases internal storage:
// treat it as read-only, and note that quantile queries may partially reorder
// it in place (deterministically for a given sample).
func (q *Quantiles) Values() []float64 { return q.xs }

// Reset discards the stored sample, keeping the backing array so a pooled
// collector does not reallocate it.
func (q *Quantiles) Reset() {
	q.xs = q.xs[:0]
	q.sorted = false
	q.selects = 0
}

// Value returns the p-quantile (0 <= p <= 1) of the stored sample. The
// simulators query only a handful of quantiles per run over samples of 10^5+
// delays, so the first few calls use an expected-O(n) quickselect instead of
// the O(n log n) full sort; if a caller keeps querying, the sample is sorted
// once and further lookups are O(1). Either path returns exact order
// statistics, so the reported values do not depend on the strategy.
func (q *Quantiles) Value(p float64) float64 {
	if len(q.xs) == 0 {
		return 0
	}
	if !q.sorted {
		q.selects++
		if q.selects > 4 {
			sort.Float64s(q.xs)
			q.sorted = true
		}
	}
	if p <= 0 {
		return q.orderStat(0)
	}
	if p >= 1 {
		return q.orderStat(len(q.xs) - 1)
	}
	idx := p * float64(len(q.xs)-1)
	lo := int(math.Floor(idx))
	hi := int(math.Ceil(idx))
	if lo == hi {
		return q.orderStat(lo)
	}
	frac := idx - float64(lo)
	return q.orderStat(lo)*(1-frac) + q.orderStat(hi)*frac
}

// orderStat returns the k-th smallest stored value (0-based), partitioning
// the sample in place with a median-of-three Hoare quickselect when it is not
// already sorted.
func (q *Quantiles) orderStat(k int) float64 {
	xs := q.xs
	if q.sorted {
		return xs[k]
	}
	lo, hi := 0, len(xs)-1
	for lo < hi {
		// Median-of-three pivot, moved to the middle position.
		mid := lo + (hi-lo)/2
		if xs[mid] < xs[lo] {
			xs[mid], xs[lo] = xs[lo], xs[mid]
		}
		if xs[hi] < xs[lo] {
			xs[hi], xs[lo] = xs[lo], xs[hi]
		}
		if xs[hi] < xs[mid] {
			xs[hi], xs[mid] = xs[mid], xs[hi]
		}
		pivot := xs[mid]
		i, j := lo, hi
		for i <= j {
			for xs[i] < pivot {
				i++
			}
			for xs[j] > pivot {
				j--
			}
			if i <= j {
				xs[i], xs[j] = xs[j], xs[i]
				i++
				j--
			}
		}
		switch {
		case k <= j:
			hi = j
		case k >= i:
			lo = i
		default:
			return xs[k]
		}
	}
	return xs[lo]
}

// BatchMeans builds non-overlapping batch means from a stream of
// observations and reports a confidence interval that accounts for the
// serial correlation typical of queueing simulations.
type BatchMeans struct {
	batchSize int64
	current   Tally
	batches   Tally
}

// NewBatchMeans creates a collector with the given batch size.
func NewBatchMeans(batchSize int) *BatchMeans {
	if batchSize <= 0 {
		panic("stats: NewBatchMeans requires a positive batch size")
	}
	return &BatchMeans{batchSize: int64(batchSize)}
}

// Add records one observation, closing a batch whenever batchSize
// observations have accumulated.
func (b *BatchMeans) Add(x float64) {
	b.current.Add(x)
	if b.current.Count() >= b.batchSize {
		b.batches.Add(b.current.Mean())
		b.current = Tally{}
	}
}

// NumBatches returns the number of completed batches.
func (b *BatchMeans) NumBatches() int64 { return b.batches.Count() }

// Mean returns the grand mean over completed batches.
func (b *BatchMeans) Mean() float64 { return b.batches.Mean() }

// HalfWidth returns the half-width of the level confidence interval computed
// from the batch means.
func (b *BatchMeans) HalfWidth(level float64) float64 {
	return b.batches.ConfidenceInterval(level)
}

// LittleLaw accumulates the three quantities related by Little's law
// (L = lambda * W) and reports the relative discrepancy between the measured
// time-average population and the product of measured throughput and mean
// delay. It is the simulator's primary internal consistency check.
type LittleLaw struct {
	Population TimeWeighted // time-averaged number in system
	Delay      Tally        // per-packet sojourn times
	Departures int64        // packets that completed
}

// RecordDeparture notes a completed packet with the given sojourn time.
func (l *LittleLaw) RecordDeparture(sojourn float64) {
	l.Delay.Add(sojourn)
	l.Departures++
}

// RelativeError returns |L - lambda*W| / max(L, tiny) over the observation
// window ending at time now; lambda is computed as departures per unit time.
func (l *LittleLaw) RelativeError(now float64) float64 {
	elapsed := now - l.Population.startTime
	if elapsed <= 0 || l.Departures == 0 {
		return 0
	}
	lambda := float64(l.Departures) / elapsed
	lw := lambda * l.Delay.Mean()
	L := l.Population.MeanAt(now)
	denom := math.Max(math.Abs(L), 1e-12)
	return math.Abs(L-lw) / denom
}

// normalQuantile returns the p-quantile of the standard normal distribution
// using the Acklam rational approximation (relative error < 1.15e-9).
func normalQuantile(p float64) float64 {
	if p <= 0 {
		return math.Inf(-1)
	}
	if p >= 1 {
		return math.Inf(1)
	}
	// Coefficients for the central and tail regions.
	a := [6]float64{-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02,
		1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00}
	b := [5]float64{-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02,
		6.680131188771972e+01, -1.328068155288572e+01}
	c := [6]float64{-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00,
		-2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00}
	d := [4]float64{7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00,
		3.754408661907416e+00}

	const pLow = 0.02425
	const pHigh = 1 - pLow
	var q, r float64
	switch {
	case p < pLow:
		q = math.Sqrt(-2 * math.Log(p))
		return (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p <= pHigh:
		q = p - 0.5
		r = q * q
		return (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default:
		q = math.Sqrt(-2 * math.Log(1-p))
		return -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	}
}

// NormalQuantile exposes the standard normal quantile function; it is used by
// the harness when sizing confidence intervals for reports.
func NormalQuantile(p float64) float64 { return normalQuantile(p) }

// Counter is a simple named event counter.
type Counter struct {
	n int64
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.n++ }

// Addn increments the counter by delta.
func (c *Counter) Addn(delta int64) { c.n += delta }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.n }

// Rate returns the counter value divided by the elapsed time.
func (c *Counter) Rate(elapsed float64) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(c.n) / elapsed
}

// Series is an ordered collection of (x, y) points used by the harness to
// report sweeps (for example delay versus dimension).
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// AddPoint appends a point to the series.
func (s *Series) AddPoint(x, y float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}

// Len returns the number of points.
func (s *Series) Len() int { return len(s.X) }

// Reset discards the points, keeping the backing arrays for reuse.
func (s *Series) Reset() {
	s.X = s.X[:0]
	s.Y = s.Y[:0]
}

// MaxY returns the largest y value (0 for an empty series).
func (s *Series) MaxY() float64 {
	m := 0.0
	for i, y := range s.Y {
		if i == 0 || y > m {
			m = y
		}
	}
	return m
}

// LinearSlope returns the least-squares slope of y against x. The stability
// experiments use the slope of queue length versus time as the divergence
// diagnostic: a clearly positive slope indicates an unstable system.
func (s *Series) LinearSlope() float64 {
	n := float64(len(s.X))
	if n < 2 {
		return 0
	}
	var sx, sy, sxx, sxy float64
	for i := range s.X {
		sx += s.X[i]
		sy += s.Y[i]
		sxx += s.X[i] * s.X[i]
		sxy += s.X[i] * s.Y[i]
	}
	denom := n*sxx - sx*sx
	if denom == 0 {
		return 0
	}
	return (n*sxy - sx*sy) / denom
}
