package network

import (
	"testing"
)

// loopSource keeps a single arc saturated: every delivery re-injects the
// delivered packet through the same arc, so the steady-state loop exercises
// enqueue, service completion, delivery statistics and the packet pool.
type loopSource struct {
	sys  *System
	left int
}

func (l *loopSource) inject() {
	p := l.sys.AcquirePacket()
	p.ID = l.sys.NewPacketID()
	p.Path = append(p.Path[:0], 0)
	l.sys.Inject(p)
}

// TestPacketTraversalZeroAllocs is the allocation regression test for the
// packet hot path: once pools and rings are warm, a full
// inject -> queue -> serve -> deliver -> recycle cycle must not allocate.
func TestPacketTraversalZeroAllocs(t *testing.T) {
	sys := NewSystem(Config{NumArcs: 1})
	l := &loopSource{sys: sys}
	sys.OnDeliver = func(*Packet, float64) {
		if l.left > 0 {
			l.left--
			l.inject()
		}
	}
	// Warm up: grow the calendar, the arc ring and the packet pool.
	l.left = 64
	for i := 0; i < 8; i++ {
		l.inject()
	}
	sys.Drain()

	allocs := testing.AllocsPerRun(100, func() {
		l.left = 64
		for i := 0; i < 8; i++ {
			l.inject()
		}
		sys.Drain()
	})
	if allocs != 0 {
		t.Fatalf("steady-state packet traversal allocates %v per run, want 0", allocs)
	}
}

// TestAcquirePacketRecycling checks that delivered pooled packets are reused
// and that caller-built packets never enter the pool.
func TestAcquirePacketRecycling(t *testing.T) {
	sys := NewSystem(Config{NumArcs: 1})
	p1 := sys.AcquirePacket()
	p1.ID = sys.NewPacketID()
	p1.Path = append(p1.Path[:0], 0)
	sys.Sim.ScheduleAt(0, func() { sys.Inject(p1) })
	sys.Sim.Run()
	p2 := sys.AcquirePacket()
	if p2 != p1 {
		t.Fatal("delivered pooled packet was not recycled")
	}
	if len(p2.Path) != 0 || p2.ID != 0 {
		t.Fatalf("recycled packet not reset: ID=%d Path=%v", p2.ID, p2.Path)
	}

	direct := &Packet{ID: 99, Path: []int{0}}
	sys.Sim.ScheduleAt(sys.Sim.Now(), func() { sys.Inject(direct) })
	sys.Sim.Run()
	p3 := sys.AcquirePacket()
	if p3 == direct {
		t.Fatal("caller-built packet must not enter the pool")
	}
}

// TestDrainStopsWhenEmpty covers the simplified Drain: with packets in
// flight it must run the calendar dry and report the drain time, with no
// trailing event stepping.
func TestDrainStopsWhenEmpty(t *testing.T) {
	sys := NewSystem(Config{NumArcs: 2})
	sys.Inject(&Packet{ID: 1, Path: []int{0, 1}})
	sys.Inject(&Packet{ID: 2, Path: []int{0, 1}})
	at := sys.Drain()
	if sys.InFlight() != 0 {
		t.Fatalf("in flight after drain: %d", sys.InFlight())
	}
	// Two packets share arc 0 then arc 1: second finishes at time 3.
	if at != 3 {
		t.Fatalf("drain time = %v, want 3", at)
	}
}

// BenchmarkSingleArcServiceLoop measures the cost of one packet traversal of
// one arc in steady state (schedule + complete + stats + recycle), the
// finest-grained unit of simulation work.
func BenchmarkSingleArcServiceLoop(b *testing.B) {
	sys := NewSystem(Config{NumArcs: 1})
	left := b.N
	inject := func() {
		p := sys.AcquirePacket()
		p.ID = sys.NewPacketID()
		p.Path = append(p.Path[:0], 0)
		sys.Inject(p)
	}
	sys.OnDeliver = func(*Packet, float64) {
		if left > 0 {
			left--
			inject()
		}
	}
	// Keep a small backlog so the arc never idles.
	for i := 0; i < 4; i++ {
		inject()
	}
	b.ReportAllocs()
	b.ResetTimer()
	sys.Drain()
	if sys.Sim.Processed() == 0 {
		b.Fatal("no events processed")
	}
}

// BenchmarkEightArcPipeline measures a packet crossing an 8-arc pipeline,
// amortising injection cost over several hops (the hypercube regime).
func BenchmarkEightArcPipeline(b *testing.B) {
	const arcs = 8
	sys := NewSystem(Config{NumArcs: arcs})
	left := b.N
	inject := func() {
		p := sys.AcquirePacket()
		p.ID = sys.NewPacketID()
		p.Path = p.Path[:0]
		for a := 0; a < arcs; a++ {
			p.Path = append(p.Path, a)
		}
		sys.Inject(p)
	}
	sys.OnDeliver = func(*Packet, float64) {
		if left > 0 {
			left--
			inject()
		}
	}
	for i := 0; i < 4; i++ {
		inject()
	}
	b.ReportAllocs()
	b.ResetTimer()
	sys.Drain()
}
