package network

import (
	"math"

	"repro/internal/stats"
)

// Collector owns the measurement state of one packet-level simulation run:
// delay and hop tallies, per-class and per-group statistics, time-weighted
// population processes, the optional exact delay sample and the population
// trace. It is the single statistics sink shared by the event-driven System
// and the slot-stepped fast-path kernel (internal/slotsim): both kernels feed
// the same collector operations in the same order, which is what makes their
// results byte-identical — float accumulation is order-sensitive, so sharing
// the arithmetic (and not just the schema) is load-bearing for the
// cross-kernel golden tests.
//
// All state is reusable in place: Reset re-initialises the collector for a
// new run without discarding backing storage, so pooled simulators perform no
// measurement allocations in steady state.
type Collector struct {
	numGroups   int
	measureFrom float64
	delay       stats.Tally
	// mixed is false while every measured delivery has class 0 — the common
	// case, where the class-0 tally would be a bit-for-bit copy of delay and
	// is therefore elided from the hot path. The first non-zero class
	// snapshots delay into clsDense[0] and switches to per-class tallies.
	mixed      bool
	clsDense   [maxDenseClass]stats.Tally
	delayByCls map[int]*stats.Tally // classes outside [0, maxDenseClass)
	hopCount   stats.Tally

	sampleDelays bool
	delaySample  stats.Quantiles

	sketchOn bool
	sketch   stats.DDSketch

	population stats.TimeWeighted
	groupPop   []stats.TimeWeighted
	groupWait  []stats.Tally
	perHopWait bool

	departures      int64
	generated       int64
	inFlight        int64
	droppedFault    int64
	droppedOverflow int64

	popTrace   stats.Series
	traceEvery float64
	lastTrace  float64
}

// Reset re-initialises the collector for a run with numGroups statistics
// groups, reusing all backing storage. Optional features (delay sampling,
// per-hop waits, the population trace) are switched off and must be
// re-enabled after the reset.
func (c *Collector) Reset(numGroups int) {
	if numGroups <= 0 {
		numGroups = 1
	}
	c.numGroups = numGroups
	c.measureFrom = 0
	c.delay = stats.Tally{}
	c.mixed = false
	c.clsDense = [maxDenseClass]stats.Tally{}
	if c.delayByCls == nil {
		c.delayByCls = make(map[int]*stats.Tally)
	} else {
		for k := range c.delayByCls {
			delete(c.delayByCls, k)
		}
	}
	c.hopCount = stats.Tally{}
	c.sampleDelays = false
	c.delaySample.Reset()
	c.sketchOn = false
	c.population.Reset(0, 0)
	if cap(c.groupPop) < numGroups {
		c.groupPop = make([]stats.TimeWeighted, numGroups)
	} else {
		c.groupPop = c.groupPop[:numGroups]
	}
	for g := range c.groupPop {
		c.groupPop[g].Reset(0, 0)
	}
	c.perHopWait = false
	c.groupWait = c.groupWait[:0]
	c.departures = 0
	c.generated = 0
	c.inFlight = 0
	c.droppedFault = 0
	c.droppedOverflow = 0
	c.popTrace.Reset()
	c.traceEvery = 0
	c.lastTrace = 0
}

// EnableDelaySample stores every measured delay so exact quantiles can be
// reported; it costs one float64 per delivered packet.
func (c *Collector) EnableDelaySample() {
	c.sampleDelays = true
	c.delaySample.Reset()
}

// EnableDelaySketch feeds every measured delay into a mergeable DDSketch
// with relative-error bound alpha, so tail quantiles can be reported with
// bounded memory (O(log(max delay)/alpha) buckets instead of one float per
// delivered packet). The sketch and the exact sample are independent
// features; large-scale runs enable only the sketch.
func (c *Collector) EnableDelaySketch(alpha float64) {
	c.sketchOn = true
	c.sketch.Reset(alpha)
}

// EnablePerHopWait records, for every arc traversal, the time from joining
// the arc's queue to finishing transmission, aggregated per statistics group.
func (c *Collector) EnablePerHopWait() {
	c.perHopWait = true
	if cap(c.groupWait) < c.numGroups {
		c.groupWait = make([]stats.Tally, c.numGroups)
	} else {
		c.groupWait = c.groupWait[:c.numGroups]
		for g := range c.groupWait {
			c.groupWait[g] = stats.Tally{}
		}
	}
}

// EnablePopulationTrace records the total population every interval time
// units (used by the stability experiments to estimate the growth slope).
func (c *Collector) EnablePopulationTrace(interval float64) {
	if interval <= 0 {
		panic("network: trace interval must be positive")
	}
	c.traceEvery = interval
}

// CountGenerated counts one injected packet.
func (c *Collector) CountGenerated() { c.generated++ }

// PacketEntered records a packet entering the network at time now.
func (c *Collector) PacketEntered(now float64) {
	c.inFlight++
	c.setPopulation(now)
}

// PacketLeft records a packet leaving the network at time now.
func (c *Collector) PacketLeft(now float64) {
	c.inFlight--
	c.setPopulation(now)
}

// PopulationAdjust applies a batched net population change at time now. When
// every individual change happened at time now and the population trace is
// disabled, the result is bit-for-bit identical to the equivalent
// PacketEntered/PacketLeft sequence: same-time updates contribute zero area,
// the final value is the same, and — because within one instant completions
// strictly precede injections, so the population moves monotonically down
// then up — the running maximum is determined by the endpoint value. The
// slot-stepped kernel uses this to fold a whole slot's population churn into
// one time-weighted update; the caller must invoke it exactly at the
// instants where the per-packet sequence would have updated the process
// (the area segmentation must match).
func (c *Collector) PopulationAdjust(now float64, delta int64) {
	c.inFlight += delta
	c.population.Set(now, float64(c.inFlight))
}

func (c *Collector) setPopulation(now float64) {
	c.population.Set(now, float64(c.inFlight))
	if c.traceEvery > 0 && now-c.lastTrace >= c.traceEvery {
		c.popTrace.AddPoint(now, float64(c.inFlight))
		c.lastTrace = now
	}
}

// GroupPopulationAdd shifts the population of statistics group g by delta at
// time now.
func (c *Collector) GroupPopulationAdd(g int32, now, delta float64) {
	c.groupPop[g].Add(now, delta)
}

// ArcWait records one completed arc traversal for group g: the time from
// joining the arc's queue (enqueuedAt) to finishing transmission (now). It is
// a no-op unless per-hop waits are enabled and the packet was generated
// inside the measurement window.
func (c *Collector) ArcWait(g int32, now, enqueuedAt, genTime float64) {
	if c.perHopWait && genTime >= c.measureFrom {
		c.groupWait[g].Add(now - enqueuedAt)
	}
}

// Deliver records the delivery at time now of a packet generated at genTime
// with the given total path length and class. Packets generated before the
// measurement window are ignored.
func (c *Collector) Deliver(now, genTime float64, hops, class int) {
	if genTime < c.measureFrom {
		return
	}
	d := now - genTime
	if class != 0 && !c.mixed {
		// Every measured delivery so far was class 0, so the class-0 tally
		// equals the delay tally bit for bit; materialise it and switch to
		// explicit per-class tracking.
		c.clsDense[0] = c.delay
		c.mixed = true
	}
	c.delay.Add(d)
	c.hopCount.Add(float64(hops))
	if c.sampleDelays {
		c.delaySample.Add(d)
	}
	if c.sketchOn {
		c.sketch.Add(d)
	}
	if c.mixed {
		if class >= 0 && class < maxDenseClass {
			c.clsDense[class].Add(d)
		} else {
			t, ok := c.delayByCls[class]
			if !ok {
				t = &stats.Tally{}
				c.delayByCls[class] = t
			}
			t.Add(d)
		}
	}
	c.departures++
}

// Drop records a packet lost at time now: a transient transmission fault
// (overflow = false) or a full finite buffer (overflow = true). Like Deliver,
// drops of packets generated before the measurement window are not counted —
// the caller still owes the population bookkeeping (PacketLeft) either way.
func (c *Collector) Drop(genTime float64, overflow bool) {
	if genTime < c.measureFrom {
		return
	}
	if overflow {
		c.droppedOverflow++
	} else {
		c.droppedFault++
	}
}

// StartMeasurement discards the warm-up transient at time now: delay
// statistics will only include packets generated from now on, and
// time-weighted statistics restart from the current state.
func (c *Collector) StartMeasurement(now float64) {
	c.measureFrom = now
	c.delay = stats.Tally{}
	c.hopCount = stats.Tally{}
	c.mixed = false
	c.clsDense = [maxDenseClass]stats.Tally{}
	for k := range c.delayByCls {
		delete(c.delayByCls, k)
	}
	if c.sampleDelays {
		c.delaySample.Reset()
	}
	if c.sketchOn {
		c.sketch.Clear()
	}
	c.departures = 0
	c.generated = 0
	c.droppedFault = 0
	c.droppedOverflow = 0
	if c.perHopWait {
		for g := range c.groupWait {
			c.groupWait[g] = stats.Tally{}
		}
	}
	c.population.Reset(now, float64(c.inFlight))
	for g := range c.groupPop {
		c.groupPop[g].Reset(now, c.groupPop[g].Current())
	}
	c.popTrace.Reset()
	c.lastTrace = now
}

// MeasureFrom returns the start of the measurement window.
func (c *Collector) MeasureFrom() float64 { return c.measureFrom }

// InFlight returns the current number of packets in the network.
func (c *Collector) InFlight() int64 { return c.inFlight }

// DelayQuantile returns the exact q-quantile of measured delays; it requires
// EnableDelaySample and returns NaN otherwise.
func (c *Collector) DelayQuantile(q float64) float64 {
	if !c.sampleDelays {
		return math.NaN()
	}
	return c.delaySample.Value(q)
}

// DelaySketch returns the delay quantile sketch when EnableDelaySketch was
// called (nil otherwise). The pointer aliases collector state valid until the
// next Reset: callers that outlive the run must Clone it.
func (c *Collector) DelaySketch() *stats.DDSketch {
	if !c.sketchOn {
		return nil
	}
	return &c.sketch
}

// DelaySample returns the measured per-packet delays when delay sampling is
// enabled (nil otherwise). The slice aliases internal storage and is valid
// until the next run: treat it as read-only. Its order is the delivery order
// until a quantile query partially reorders it; identical runs produce the
// identical sequence either way, which is what the cross-kernel golden tests
// compare.
func (c *Collector) DelaySample() []float64 {
	if !c.sampleDelays {
		return nil
	}
	return c.delaySample.Values()
}

// Snapshot closes the measurement window at time now and assembles the
// metrics. The caller supplies the per-group arc aggregates (arc counts, busy
// time and arrival totals, accumulated in arc-index order), because arc state
// lives with the kernel, not the collector.
func (c *Collector) Snapshot(now float64, groupArcs []int, groupBusy, groupArrivals []float64) Metrics {
	elapsed := now - c.measureFrom
	m := Metrics{
		Elapsed:             elapsed,
		MeanDelay:           c.delay.Mean(),
		DelayStdDev:         c.delay.StdDev(),
		DelayCI95:           c.delay.ConfidenceInterval(0.95),
		MaxDelay:            c.delay.Max(),
		MeanHops:            c.hopCount.Mean(),
		Delivered:           c.departures,
		Generated:           c.generated,
		DroppedFault:        c.droppedFault,
		DroppedOverflow:     c.droppedOverflow,
		MeanPopulation:      c.population.MeanAt(now),
		MaxPopulation:       c.population.Max(),
		InFlight:            c.inFlight,
		GroupMeanPopulation: make([]float64, len(c.groupPop)),
		GroupArcUtilization: make([]float64, len(c.groupPop)),
		GroupArrivalRate:    make([]float64, len(c.groupPop)),
		MeanDelayByClass:    make(map[int]float64, len(c.delayByCls)),
	}
	if elapsed > 0 {
		m.Throughput = float64(c.departures) / elapsed
	}
	for g := range c.groupPop {
		m.GroupMeanPopulation[g] = c.groupPop[g].MeanAt(now)
	}
	for g := range c.groupPop {
		if groupArcs[g] > 0 && elapsed > 0 {
			m.GroupArcUtilization[g] = groupBusy[g] / (float64(groupArcs[g]) * elapsed)
			m.GroupArrivalRate[g] = groupArrivals[g] / (float64(groupArcs[g]) * elapsed)
		}
	}
	if !c.mixed {
		// All measured deliveries were class 0: the class tally is the delay
		// tally (bit for bit), so it was never materialised.
		if c.departures > 0 {
			m.MeanDelayByClass[0] = c.delay.Mean()
		}
	} else {
		for cls := range c.clsDense {
			if c.clsDense[cls].Count() > 0 {
				m.MeanDelayByClass[cls] = c.clsDense[cls].Mean()
			}
		}
		for cls, t := range c.delayByCls {
			m.MeanDelayByClass[cls] = t.Mean()
		}
	}
	if c.perHopWait {
		m.GroupMeanWait = make([]float64, len(c.groupWait))
		for g := range c.groupWait {
			m.GroupMeanWait[g] = c.groupWait[g].Mean()
		}
	}
	if c.traceEvery > 0 {
		m.PopulationSlope = c.popTrace.LinearSlope()
	}
	// Little's law check: L vs (departure rate) * (mean delay).
	if elapsed > 0 && c.departures > 0 {
		lw := m.Throughput * m.MeanDelay
		denom := math.Max(m.MeanPopulation, 1e-12)
		m.LittleLawError = math.Abs(m.MeanPopulation-lw) / denom
	}
	return m
}
