package network

import (
	"math"
	"testing"

	"repro/internal/queueing"
	"repro/internal/workload"
	"repro/internal/xrand"
)

// injectPoisson drives a single-arc system with Poisson arrivals of the given
// rate, all packets following the same one-arc path.
func runSingleArc(t *testing.T, rate float64, horizon float64, discipline Discipline) (*System, Metrics) {
	t.Helper()
	sys := NewSystem(Config{NumArcs: 1, Discipline: discipline, Seed: 99})
	src := workload.NewPoissonSource(rate, 1234, 0)
	var schedule func()
	schedule = func() {
		next := src.NextArrival()
		if next > horizon {
			return
		}
		src.Advance()
		sys.Sim.ScheduleAt(next, func() {
			sys.Inject(&Packet{ID: sys.NewPacketID(), Path: []int{0}})
			schedule()
		})
	}
	schedule()
	sys.Sim.RunUntil(horizon * 0.1)
	sys.StartMeasurement()
	sys.Sim.RunUntil(horizon)
	return sys, sys.Snapshot()
}

func TestSingleArcMatchesMD1(t *testing.T) {
	// A single arc fed by Poisson traffic is exactly an M/D/1 queue; the
	// measured sojourn time must match Pollaczek-Khinchine.
	for _, rho := range []float64{0.3, 0.6, 0.8} {
		_, m := runSingleArc(t, rho, 200000, FIFO)
		want, err := queueing.MD1{Lambda: rho}.MeanDelay()
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(m.MeanDelay-want) > 0.05*want {
			t.Fatalf("rho=%v: measured delay %v, M/D/1 predicts %v", rho, m.MeanDelay, want)
		}
		wantN, _ := queueing.MD1{Lambda: rho}.MeanNumber()
		if math.Abs(m.MeanPopulation-wantN) > 0.08*math.Max(wantN, 0.1) {
			t.Fatalf("rho=%v: measured population %v, M/D/1 predicts %v", rho, m.MeanPopulation, wantN)
		}
		if m.LittleLawError > 0.03 {
			t.Fatalf("rho=%v: Little's law error %v", rho, m.LittleLawError)
		}
		if math.Abs(m.GroupArcUtilization[0]-rho) > 0.05 {
			t.Fatalf("rho=%v: utilisation %v", rho, m.GroupArcUtilization[0])
		}
		if math.Abs(m.Throughput-rho) > 0.05 {
			t.Fatalf("rho=%v: throughput %v", rho, m.Throughput)
		}
	}
}

func TestRandomOrderDisciplineSameMeanDelay(t *testing.T) {
	// The mean delay of an M/D/1 queue is the same under any non-idling,
	// non-preemptive discipline that does not use service-time information;
	// random order must agree with FIFO on the mean (though not the variance).
	_, fifo := runSingleArc(t, 0.7, 100000, FIFO)
	_, random := runSingleArc(t, 0.7, 100000, RandomOrder)
	if math.Abs(fifo.MeanDelay-random.MeanDelay) > 0.08*fifo.MeanDelay {
		t.Fatalf("FIFO %v vs random-order %v mean delay", fifo.MeanDelay, random.MeanDelay)
	}
	if random.DelayStdDev <= fifo.DelayStdDev {
		t.Log("note: random-order variance not larger than FIFO in this run (possible but unusual)")
	}
}

func TestTandemConservationAndDelay(t *testing.T) {
	// Two arcs in series at low load: mean delay is at least 2 (two unit
	// services) and every generated packet is eventually delivered.
	sys := NewSystem(Config{NumArcs: 2})
	src := workload.NewPoissonSource(0.3, 5, 0)
	const horizon = 20000
	var schedule func()
	schedule = func() {
		next := src.NextArrival()
		if next > horizon {
			return
		}
		src.Advance()
		sys.Sim.ScheduleAt(next, func() {
			sys.Inject(&Packet{ID: sys.NewPacketID(), Path: []int{0, 1}})
			schedule()
		})
	}
	schedule()
	sys.Sim.RunUntil(horizon)
	drainTime := sys.Drain()
	m := sys.Snapshot()
	if m.InFlight != 0 {
		t.Fatalf("packets still in flight after drain: %d", m.InFlight)
	}
	if m.Generated != m.Delivered {
		t.Fatalf("generated %d != delivered %d", m.Generated, m.Delivered)
	}
	if m.MeanDelay < 2 {
		t.Fatalf("two-hop delay %v < 2", m.MeanDelay)
	}
	if m.MeanHops != 2 {
		t.Fatalf("mean hops %v", m.MeanHops)
	}
	if drainTime < horizon {
		t.Fatalf("drain time %v before horizon", drainTime)
	}
}

func TestFIFOOrderPreserved(t *testing.T) {
	// Packets injected into the same arc back-to-back must depart in order
	// under FIFO.
	sys := NewSystem(Config{NumArcs: 1})
	var departures []int64
	sys.OnDeliver = func(p *Packet, now float64) { departures = append(departures, p.ID) }
	for i := 0; i < 50; i++ {
		id := int64(i)
		sys.Sim.ScheduleAt(0, func() {
			sys.Inject(&Packet{ID: id, Path: []int{0}})
		})
	}
	sys.Sim.Run()
	if len(departures) != 50 {
		t.Fatalf("delivered %d", len(departures))
	}
	for i, id := range departures {
		if id != int64(i) {
			t.Fatalf("FIFO order violated: %v", departures[:i+1])
		}
	}
}

func TestZeroHopPacketDeliveredImmediately(t *testing.T) {
	sys := NewSystem(Config{NumArcs: 1})
	delivered := false
	sys.OnDeliver = func(p *Packet, now float64) {
		delivered = true
		if now != 0 {
			t.Fatalf("zero-hop packet delivered at %v", now)
		}
	}
	sys.Sim.ScheduleAt(0, func() {
		sys.Inject(&Packet{ID: 1, Path: nil})
	})
	sys.Sim.Run()
	if !delivered {
		t.Fatal("zero-hop packet never delivered")
	}
	m := sys.Snapshot()
	if m.Delivered != 1 || m.MeanDelay != 0 {
		t.Fatalf("metrics = %+v", m)
	}
}

func TestDeterministicBackToBackService(t *testing.T) {
	// Three packets injected at time 0 into one arc: departures at 1, 2, 3;
	// mean delay (1+2+3)/3 = 2.
	sys := NewSystem(Config{NumArcs: 1})
	var times []float64
	sys.OnDeliver = func(p *Packet, now float64) { times = append(times, now) }
	sys.Sim.ScheduleAt(0, func() {
		for i := 0; i < 3; i++ {
			sys.Inject(&Packet{ID: int64(i), Path: []int{0}})
		}
	})
	sys.Sim.Run()
	want := []float64{1, 2, 3}
	for i := range want {
		if times[i] != want[i] {
			t.Fatalf("departure times %v", times)
		}
	}
	m := sys.Snapshot()
	if math.Abs(m.MeanDelay-2) > 1e-12 {
		t.Fatalf("mean delay %v", m.MeanDelay)
	}
	if m.MaxDelay != 3 {
		t.Fatalf("max delay %v", m.MaxDelay)
	}
}

func TestCustomServiceTime(t *testing.T) {
	sys := NewSystem(Config{NumArcs: 1, ServiceTime: 0.25})
	var deliveredAt float64
	sys.OnDeliver = func(p *Packet, now float64) { deliveredAt = now }
	sys.Sim.ScheduleAt(0, func() { sys.Inject(&Packet{ID: 1, Path: []int{0}}) })
	sys.Sim.Run()
	if deliveredAt != 0.25 {
		t.Fatalf("delivered at %v", deliveredAt)
	}
}

func TestTotalQueuedMatchesInFlight(t *testing.T) {
	sys := NewSystem(Config{NumArcs: 4})
	rng := xrand.New(7)
	const horizon = 2000
	src := workload.NewPoissonSource(0.9, 3, 0)
	var schedule func()
	schedule = func() {
		next := src.NextArrival()
		if next > horizon {
			return
		}
		src.Advance()
		sys.Sim.ScheduleAt(next, func() {
			// Random 2-hop path among the 4 arcs.
			a := rng.Intn(4)
			b := rng.Intn(4)
			sys.Inject(&Packet{ID: sys.NewPacketID(), Path: []int{a, b}})
			if sys.TotalQueued() != sys.InFlight() {
				t.Errorf("queued %d != in flight %d", sys.TotalQueued(), sys.InFlight())
			}
			schedule()
		})
	}
	schedule()
	sys.Sim.RunUntil(horizon)
	if sys.TotalQueued() != sys.InFlight() {
		t.Fatalf("final queued %d != in flight %d", sys.TotalQueued(), sys.InFlight())
	}
}

func TestGroupStatistics(t *testing.T) {
	// Two arcs in different groups; only group 1 receives traffic.
	sys := NewSystem(Config{
		NumArcs:   2,
		GroupOf:   func(a int) int { return a },
		NumGroups: 2,
	})
	src := workload.NewPoissonSource(0.5, 9, 0)
	const horizon = 20000
	var schedule func()
	schedule = func() {
		next := src.NextArrival()
		if next > horizon {
			return
		}
		src.Advance()
		sys.Sim.ScheduleAt(next, func() {
			sys.Inject(&Packet{ID: sys.NewPacketID(), Path: []int{1}})
			schedule()
		})
	}
	schedule()
	sys.Sim.RunUntil(horizon)
	m := sys.Snapshot()
	if m.GroupArcUtilization[0] != 0 {
		t.Fatalf("idle group shows utilisation %v", m.GroupArcUtilization[0])
	}
	if math.Abs(m.GroupArcUtilization[1]-0.5) > 0.05 {
		t.Fatalf("busy group utilisation %v", m.GroupArcUtilization[1])
	}
	if m.GroupMeanPopulation[0] != 0 {
		t.Fatalf("idle group population %v", m.GroupMeanPopulation[0])
	}
	if m.GroupMeanPopulation[1] <= 0 {
		t.Fatalf("busy group population %v", m.GroupMeanPopulation[1])
	}
	if math.Abs(m.GroupArrivalRate[1]-0.5) > 0.05 {
		t.Fatalf("busy group arrival rate %v", m.GroupArrivalRate[1])
	}
}

func TestStartMeasurementDiscardsWarmup(t *testing.T) {
	sys := NewSystem(Config{NumArcs: 1})
	// Warm-up traffic: a large burst that causes long delays.
	sys.Sim.ScheduleAt(0, func() {
		for i := 0; i < 100; i++ {
			sys.Inject(&Packet{ID: sys.NewPacketID(), Path: []int{0}})
		}
	})
	sys.Sim.RunUntil(200)
	sys.StartMeasurement()
	// Measured traffic: single isolated packet, delay exactly 1.
	sys.Sim.ScheduleAt(300, func() {
		sys.Inject(&Packet{ID: sys.NewPacketID(), Path: []int{0}})
	})
	sys.Sim.RunUntil(400)
	m := sys.Snapshot()
	if m.Delivered != 1 {
		t.Fatalf("delivered %d packets in measurement window", m.Delivered)
	}
	if m.MeanDelay != 1 {
		t.Fatalf("mean delay %v, warm-up leaked into measurement", m.MeanDelay)
	}
}

func TestDelayQuantileAndClasses(t *testing.T) {
	sys := NewSystem(Config{NumArcs: 1})
	sys.EnableDelaySample()
	sys.Sim.ScheduleAt(0, func() {
		sys.Inject(&Packet{ID: 0, Path: []int{0}, Class: 1}) // delay 1
		sys.Inject(&Packet{ID: 1, Path: []int{0}, Class: 2}) // delay 2
	})
	sys.Sim.Run()
	if got := sys.DelayQuantile(1.0); got != 2 {
		t.Fatalf("max quantile %v", got)
	}
	if got := sys.DelayQuantile(0.0); got != 1 {
		t.Fatalf("min quantile %v", got)
	}
	m := sys.Snapshot()
	if m.MeanDelayByClass[1] != 1 || m.MeanDelayByClass[2] != 2 {
		t.Fatalf("per-class delays %v", m.MeanDelayByClass)
	}
}

func TestDelayQuantileWithoutSampleIsNaN(t *testing.T) {
	sys := NewSystem(Config{NumArcs: 1})
	if !math.IsNaN(sys.DelayQuantile(0.5)) {
		t.Fatal("expected NaN without EnableDelaySample")
	}
}

func TestPopulationTraceSlopeUnstableQueue(t *testing.T) {
	// A single arc overloaded at rho = 1.5 must show a clearly positive
	// population slope (~0.5 packets per unit time).
	sys := NewSystem(Config{NumArcs: 1})
	sys.EnablePopulationTrace(10)
	src := workload.NewPoissonSource(1.5, 21, 0)
	const horizon = 5000
	var schedule func()
	schedule = func() {
		next := src.NextArrival()
		if next > horizon {
			return
		}
		src.Advance()
		sys.Sim.ScheduleAt(next, func() {
			sys.Inject(&Packet{ID: sys.NewPacketID(), Path: []int{0}})
			schedule()
		})
	}
	schedule()
	sys.Sim.RunUntil(horizon)
	m := sys.Snapshot()
	if m.PopulationSlope < 0.3 {
		t.Fatalf("unstable queue slope %v, want about 0.5", m.PopulationSlope)
	}
	// A stable queue's slope is near zero.
	sysStable, mStable := runSingleArc(t, 0.5, 20000, FIFO)
	_ = sysStable
	if math.Abs(mStable.PopulationSlope) > 0.05 {
		// The stable run did not enable tracing, so slope should be zero.
		t.Fatalf("stable slope %v", mStable.PopulationSlope)
	}
}

func TestConfigValidation(t *testing.T) {
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("expected panic for zero arcs")
			}
		}()
		NewSystem(Config{NumArcs: 0})
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("expected panic for negative service time")
			}
		}()
		NewSystem(Config{NumArcs: 1, ServiceTime: -1})
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("expected panic for bad trace interval")
			}
		}()
		s := NewSystem(Config{NumArcs: 1})
		s.EnablePopulationTrace(0)
	}()
}

func TestBadPathPanics(t *testing.T) {
	sys := NewSystem(Config{NumArcs: 2})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range arc index")
		}
	}()
	sys.Sim.ScheduleAt(0, func() {
		sys.Inject(&Packet{ID: 1, Path: []int{5}})
	})
	sys.Sim.Run()
}

func TestDisciplineString(t *testing.T) {
	if FIFO.String() != "fifo" || RandomOrder.String() != "random-order" {
		t.Fatal("discipline names wrong")
	}
	if Discipline(42).String() == "" {
		t.Fatal("unknown discipline name empty")
	}
}

func TestPacketHops(t *testing.T) {
	p := &Packet{Path: []int{1, 2, 3}}
	if p.Hops() != 3 {
		t.Fatalf("Hops = %d", p.Hops())
	}
}

func TestConfigAccessor(t *testing.T) {
	sys := NewSystem(Config{NumArcs: 3, ServiceTime: 2})
	if sys.Config().NumArcs != 3 || sys.Config().ServiceTime != 2 {
		t.Fatal("Config accessor wrong")
	}
}

func BenchmarkSingleArcSimulation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sys := NewSystem(Config{NumArcs: 1})
		src := workload.NewPoissonSource(0.8, uint64(i), 0)
		const horizon = 1000
		var schedule func()
		schedule = func() {
			next := src.NextArrival()
			if next > horizon {
				return
			}
			src.Advance()
			sys.Sim.ScheduleAt(next, func() {
				sys.Inject(&Packet{ID: sys.NewPacketID(), Path: []int{0}})
				schedule()
			})
		}
		schedule()
		sys.Sim.RunUntil(horizon)
	}
}

func TestPerHopWaitStatistics(t *testing.T) {
	// Two arcs in different groups; three packets injected back to back at
	// time 0 traverse arc 0 then arc 1. At arc 0 their sojourns are 1, 2, 3;
	// at arc 1 they arrive one time unit apart and never wait, so each
	// sojourn is exactly 1.
	sys := NewSystem(Config{
		NumArcs:   2,
		GroupOf:   func(a int) int { return a },
		NumGroups: 2,
	})
	sys.EnablePerHopWait()
	sys.Sim.ScheduleAt(0, func() {
		for i := 0; i < 3; i++ {
			sys.Inject(&Packet{ID: int64(i), Path: []int{0, 1}})
		}
	})
	sys.Sim.Run()
	m := sys.Snapshot()
	if len(m.GroupMeanWait) != 2 {
		t.Fatalf("GroupMeanWait has %d entries", len(m.GroupMeanWait))
	}
	if math.Abs(m.GroupMeanWait[0]-2) > 1e-12 {
		t.Fatalf("group 0 mean sojourn %v, want 2", m.GroupMeanWait[0])
	}
	if math.Abs(m.GroupMeanWait[1]-1) > 1e-12 {
		t.Fatalf("group 1 mean sojourn %v, want 1", m.GroupMeanWait[1])
	}
}

func TestPerHopWaitResetByStartMeasurement(t *testing.T) {
	sys := NewSystem(Config{NumArcs: 1})
	sys.EnablePerHopWait()
	// Warm-up burst with heavy queueing.
	sys.Sim.ScheduleAt(0, func() {
		for i := 0; i < 10; i++ {
			sys.Inject(&Packet{ID: int64(i), Path: []int{0}})
		}
	})
	sys.Sim.RunUntil(50)
	sys.StartMeasurement()
	// One isolated packet after the reset: sojourn exactly 1.
	sys.Sim.ScheduleAt(60, func() {
		sys.Inject(&Packet{ID: 99, Path: []int{0}})
	})
	sys.Sim.RunUntil(100)
	m := sys.Snapshot()
	if math.Abs(m.GroupMeanWait[0]-1) > 1e-12 {
		t.Fatalf("mean sojourn after reset %v, want 1", m.GroupMeanWait[0])
	}
}

func TestPerHopWaitAbsentWithoutFlag(t *testing.T) {
	sys := NewSystem(Config{NumArcs: 1})
	sys.Sim.ScheduleAt(0, func() { sys.Inject(&Packet{ID: 1, Path: []int{0}}) })
	sys.Sim.Run()
	if sys.Snapshot().GroupMeanWait != nil {
		t.Fatal("GroupMeanWait should be nil when tracking is disabled")
	}
}
