// Package network is the packet-level simulator of a store-and-forward
// interconnection network under the paper's communication assumptions (§1.1):
// every directed arc transmits one packet at a time with a deterministic unit
// transmission time, nodes have infinite buffers, a node may transmit on all
// its output ports simultaneously, and packets queue per output arc. The
// package is topology-agnostic: a packet carries its path as a sequence of
// dense arc indices (produced by internal/routing from a hypercube or
// butterfly topology), and the simulator provides the queueing, service and
// measurement machinery shared by every experiment.
package network

import (
	"fmt"

	"repro/internal/des"
	"repro/internal/ringbuf"
	"repro/internal/stats"
	"repro/internal/xrand"
)

// Discipline selects how an arc picks the next packet from its queue.
type Discipline int

const (
	// FIFO serves packets in arrival order, the rule analysed by the paper.
	FIFO Discipline = iota
	// RandomOrder serves a uniformly random queued packet; it exists for the
	// arc-priority ablation (the paper's delay bounds do not depend on the
	// priority rule, only on the work-conserving property).
	RandomOrder
)

// String names the discipline.
func (d Discipline) String() string {
	switch d {
	case FIFO:
		return "fifo"
	case RandomOrder:
		return "random-order"
	default:
		return fmt.Sprintf("discipline(%d)", int(d))
	}
}

// Packet is one message travelling through the network.
type Packet struct {
	ID      int64
	Origin  int   // origin node identifier (topology-specific meaning)
	Dest    int   // destination node identifier
	Path    []int // dense arc indices remaining to traverse, in order
	GenTime float64
	Class   int // free-form tag (e.g. Valiant phase), reported per class
	hop     int
	// enqueuedAt is the time the packet joined its current arc's queue; it
	// feeds the per-group waiting-time statistics.
	enqueuedAt float64
	// pooled marks packets obtained from AcquirePacket; only those are
	// recycled onto the free list when delivered.
	pooled bool
}

// Hops returns the total number of arcs on the packet's path.
func (p *Packet) Hops() int { return len(p.Path) }

// Config describes a System.
type Config struct {
	// NumArcs is the number of servers (arcs) in the network.
	NumArcs int
	// GroupOf maps an arc index to a statistics group (hypercube dimension,
	// butterfly level/kind, ...). May be nil, in which case all arcs share
	// group 0.
	GroupOf func(arc int) int
	// NumGroups is the number of distinct groups produced by GroupOf.
	NumGroups int
	// ServiceTime is the deterministic transmission time per arc; the paper
	// uses 1 everywhere and that is the default when zero.
	ServiceTime float64
	// Discipline selects the queueing discipline at each arc.
	Discipline Discipline
	// Seed drives the randomness used by the RandomOrder discipline.
	Seed uint64
	// SkipGroupPopulation disables the per-group time-weighted population
	// processes (two updates per hop on the hot path); Metrics then reports
	// zero GroupMeanPopulation. Callers that never read the per-group
	// populations (the butterfly experiments) set it on both kernels.
	SkipGroupPopulation bool
	// ArcFailProb is the probability that any single transmission fails and
	// drops its packet, drawn at each service completion from the dedicated
	// fault stream (xrand.StreamFault of Seed). Zero disables the draw
	// entirely, keeping faultless runs byte-identical.
	ArcFailProb float64
	// BufferCapacity, when positive, bounds each arc's waiting queue (the
	// packet in service is not counted); an arrival at a full queue is
	// dropped. Zero means infinite buffers.
	BufferCapacity int
	// Outages schedules link outage windows, sorted by start time and
	// non-overlapping. A down arc finishes its in-flight transmission but
	// starts no new one until the window ends; its queue keeps accepting
	// packets (subject to BufferCapacity).
	Outages []Outage
}

// Outage is one resolved link outage window [From, Until) over an explicit,
// ascending arc index set. It is the kernel-level currency shared by the
// event-driven and slot-stepped kernels (sim resolves spec-level outage
// fractions into this form once, so both kernels see identical arc sets).
type Outage struct {
	From  float64
	Until float64
	Arcs  []int32
}

// arcState is the per-arc queue and busy/idle state.
type arcState struct {
	queue     ringbuf.Ring[*Packet]
	inService *Packet
	arrivals  int64
	busySince float64
	busyTime  float64
}

// Typed-event kinds of the System handler. evComplete's owner is the arc
// index; the outage kinds' owner is the index into Config.Outages.
const (
	evComplete int32 = iota
	evOutageStart
	evOutageEnd
)

// maxDenseClass bounds the packet classes tracked in a dense slice instead of
// a map; the experiments use at most a handful of classes (Valiant phases,
// deflection priorities), so per-delivery map lookups would be pure overhead.
const maxDenseClass = 16

// System simulates a set of unit-service arcs fed with packets. It owns the
// event calendar; traffic sources schedule injection events on Sim.
type System struct {
	Sim *des.Simulator

	cfg     Config
	handler des.HandlerID
	svcCh   des.ChannelID // completions all use the same fixed ServiceTime
	arcs    []arcState
	// groupOf is the arc -> statistics group table, precomputed once at
	// NewSystem so the hot path never calls the cfg.GroupOf func.
	groupOf []int32
	rng     *xrand.Rand
	// faultRNG is the dedicated transient-fault stream; it is consumed only
	// when cfg.ArcFailProb > 0 (exactly one draw per service completion).
	faultRNG *xrand.Rand
	// arcDown marks arcs inside an active outage window; nil when the run has
	// no outages, so the faultless hot path costs one nil check.
	arcDown []bool
	nextID  int64
	// pool is the free list of delivered pooled packets (see AcquirePacket).
	pool []*Packet

	// OnDeliver, when non-nil, is called for every packet that reaches its
	// destination, after statistics have been recorded. Pooled packets are
	// recycled when the callback returns, so it must not retain p.
	OnDeliver func(p *Packet, now float64)

	// col is the measurement state; delay statistics include only packets
	// generated at or after the measurement start.
	col Collector

	// Snapshot scratch: per-group arc aggregates, reused across runs.
	snapArcs     []int
	snapBusy     []float64
	snapArrivals []float64
}

// NewSystem builds a System from the configuration.
func NewSystem(cfg Config) *System {
	s := &System{
		Sim:      des.New(),
		rng:      xrand.New(0),
		faultRNG: xrand.New(0),
	}
	s.handler = s.Sim.RegisterHandler(s)
	s.svcCh = s.Sim.NewChannel()
	s.configure(cfg)
	return s
}

// Reset rebuilds the system in place for a new run with the given
// configuration, reusing the event calendar, arc storage, per-arc rings, the
// packet pool and all measurement state; a pooled System therefore performs
// no per-replication setup allocations in steady state. The embedded
// simulator keeps its registered handlers and channels across the reset, so
// traffic sources that registered handlers on Sim may keep using their ids.
// Packets still queued from the previous run are recycled into the pool.
func (s *System) Reset(cfg Config) {
	for i := range s.arcs {
		a := &s.arcs[i]
		if a.inService != nil {
			s.recycle(a.inService)
			a.inService = nil
		}
		for a.queue.Len() > 0 {
			s.recycle(a.queue.PopFront())
		}
		a.arrivals, a.busySince, a.busyTime = 0, 0, 0
	}
	s.Sim.Reset()
	s.nextID = 0
	s.OnDeliver = nil
	s.configure(cfg)
}

// recycle returns a leftover pooled packet to the free list (caller-built
// packets are dropped, as on delivery).
func (s *System) recycle(p *Packet) {
	if p.pooled {
		s.releasePacket(p)
	}
}

// configure validates cfg and (re-)initialises the config-dependent state.
func (s *System) configure(cfg Config) {
	if cfg.NumArcs <= 0 {
		panic(fmt.Sprintf("network: NumArcs must be positive, got %d", cfg.NumArcs))
	}
	if cfg.ServiceTime == 0 {
		cfg.ServiceTime = 1
	}
	if cfg.ServiceTime < 0 {
		panic(fmt.Sprintf("network: negative service time %v", cfg.ServiceTime))
	}
	if cfg.GroupOf == nil {
		cfg.GroupOf = func(int) int { return 0 }
		cfg.NumGroups = 1
	}
	if cfg.NumGroups <= 0 {
		cfg.NumGroups = 1
	}
	s.cfg = cfg
	if cap(s.arcs) < cfg.NumArcs {
		s.arcs = make([]arcState, cfg.NumArcs)
	} else {
		s.arcs = s.arcs[:cfg.NumArcs]
	}
	if cap(s.groupOf) < cfg.NumArcs {
		s.groupOf = make([]int32, cfg.NumArcs)
	} else {
		s.groupOf = s.groupOf[:cfg.NumArcs]
	}
	for i := range s.groupOf {
		g := cfg.GroupOf(i)
		if g < 0 || g >= cfg.NumGroups {
			panic(fmt.Sprintf("network: GroupOf(%d) = %d outside [0,%d)", i, g, cfg.NumGroups))
		}
		s.groupOf[i] = int32(g)
	}
	s.rng.SeedStream(cfg.Seed, 0xD15C)
	s.faultRNG.SeedStream(cfg.Seed, xrand.StreamFault)
	if len(cfg.Outages) > 0 {
		if cap(s.arcDown) < cfg.NumArcs {
			s.arcDown = make([]bool, cfg.NumArcs)
		} else {
			s.arcDown = s.arcDown[:cfg.NumArcs]
			for i := range s.arcDown {
				s.arcDown[i] = false
			}
		}
		// Outage transitions are scheduled before any source or completion
		// event, so their sequence numbers are the lowest: at equal times a
		// transition always fires first, matching the slot-stepped kernel's
		// transitions-before-events rule.
		for i, o := range cfg.Outages {
			s.Sim.ScheduleEventAt(o.From, s.handler, evOutageStart, int32(i))
			s.Sim.ScheduleEventAt(o.Until, s.handler, evOutageEnd, int32(i))
		}
	} else {
		s.arcDown = nil
	}
	s.col.Reset(cfg.NumGroups)
}

// HandleEvent dispatches the system's typed calendar events.
func (s *System) HandleEvent(kind, owner int32) {
	switch kind {
	case evComplete:
		s.completeService(int(owner))
	case evOutageStart:
		for _, arc := range s.cfg.Outages[owner].Arcs {
			s.arcDown[arc] = true
		}
	case evOutageEnd:
		now := s.Sim.Now()
		for _, arc := range s.cfg.Outages[owner].Arcs {
			s.arcDown[arc] = false
			// Restart idle arcs with queued work, in ascending arc order (the
			// slot-stepped kernel restarts in the same order).
			a := &s.arcs[arc]
			if a.inService == nil && a.queue.Len() > 0 {
				s.startService(int(arc), s.nextFromQueue(a), now)
			}
		}
	default:
		panic(fmt.Sprintf("network: unknown event kind %d", kind))
	}
}

// AcquirePacket returns a packet from the free list of delivered packets, or
// a new one when the list is empty. Acquired packets are recycled
// automatically when delivered, so a steady-state source injects without
// allocating; the Path slice keeps its capacity and is returned with length
// zero. Packets built directly with &Packet{} are never recycled.
func (s *System) AcquirePacket() *Packet {
	if n := len(s.pool); n > 0 {
		p := s.pool[n-1]
		s.pool[n-1] = nil
		s.pool = s.pool[:n-1]
		return p
	}
	return &Packet{pooled: true}
}

// releasePacket resets a delivered pooled packet and returns it to the free
// list.
func (s *System) releasePacket(p *Packet) {
	*p = Packet{Path: p.Path[:0], pooled: true}
	s.pool = append(s.pool, p)
}

// Config returns the configuration the system was built with.
func (s *System) Config() Config { return s.cfg }

// EnableDelaySample stores every measured delay so exact quantiles can be
// reported; it costs one float64 per delivered packet.
func (s *System) EnableDelaySample() { s.col.EnableDelaySample() }

// EnableDelaySketch feeds every measured delay into a mergeable quantile
// sketch with relative-error bound alpha; see Collector.EnableDelaySketch.
func (s *System) EnableDelaySketch(alpha float64) { s.col.EnableDelaySketch(alpha) }

// EnablePerHopWait records, for every arc traversal, the time from joining
// the arc's queue to finishing transmission, aggregated per statistics group.
// The hypercube experiments use it to measure the per-dimension contention
// profile discussed at the end of §3.3.
func (s *System) EnablePerHopWait() { s.col.EnablePerHopWait() }

// EnablePopulationTrace records the total population every interval time
// units (used by the stability experiments to estimate the growth slope).
func (s *System) EnablePopulationTrace(interval float64) {
	s.col.EnablePopulationTrace(interval)
}

// NewPacketID returns a fresh packet identifier.
func (s *System) NewPacketID() int64 {
	id := s.nextID
	s.nextID++
	return id
}

// Inject introduces a packet into the network at the current simulation time.
// A packet whose path is empty (origin equals destination) is delivered
// immediately with zero delay, exactly as in the model.
func (s *System) Inject(p *Packet) {
	now := s.Sim.Now()
	p.GenTime = now
	p.hop = 0
	s.col.CountGenerated()
	if len(p.Path) == 0 {
		s.recordDelivery(p, now)
		return
	}
	s.col.PacketEntered(now)
	s.enqueue(p, now)
}

// enqueue places the packet at its current arc and starts service if the arc
// is idle (and not inside an outage window). With a finite BufferCapacity, a
// packet that would join a full queue is dropped instead.
func (s *System) enqueue(p *Packet, now float64) {
	idx := p.Path[p.hop]
	if idx < 0 || idx >= len(s.arcs) {
		panic(fmt.Sprintf("network: packet %d path refers to arc %d outside [0,%d)", p.ID, idx, len(s.arcs)))
	}
	a := &s.arcs[idx]
	if a.inService != nil || (s.arcDown != nil && s.arcDown[idx]) {
		if s.cfg.BufferCapacity > 0 && a.queue.Len() >= s.cfg.BufferCapacity {
			s.drop(p, now, true)
			return
		}
		a.arrivals++
		p.enqueuedAt = now
		a.queue.Push(p)
	} else {
		a.arrivals++
		p.enqueuedAt = now
		s.startService(idx, p, now)
	}
	if !s.cfg.SkipGroupPopulation {
		s.col.GroupPopulationAdd(s.groupOf[idx], now, +1)
	}
}

// drop discards a packet that is already inside the network: a transient
// transmission fault (overflow = false) or a full finite buffer
// (overflow = true).
func (s *System) drop(p *Packet, now float64, overflow bool) {
	s.col.PacketLeft(now)
	s.col.Drop(p.GenTime, overflow)
	if p.pooled {
		s.releasePacket(p)
	}
}

// nextFromQueue removes the next packet to serve from a's queue according to
// the configured discipline. The queue must be non-empty.
func (s *System) nextFromQueue(a *arcState) *Packet {
	switch s.cfg.Discipline {
	case FIFO:
		return a.queue.PopFront()
	case RandomOrder:
		return a.queue.RemoveSwap(s.rng.Intn(a.queue.Len()))
	default:
		panic("network: unknown discipline")
	}
}

// startService begins transmitting p on arc idx.
func (s *System) startService(idx int, p *Packet, now float64) {
	a := &s.arcs[idx]
	a.inService = p
	a.busySince = now
	s.Sim.ScheduleChannel(s.svcCh, s.cfg.ServiceTime, s.handler, evComplete, int32(idx))
}

// completeService finishes the transmission in progress on arc idx, advances
// the packet and starts the next queued transmission.
func (s *System) completeService(idx int) {
	now := s.Sim.Now()
	a := &s.arcs[idx]
	p := a.inService
	if p == nil {
		panic(fmt.Sprintf("network: completion on idle arc %d", idx))
	}
	a.inService = nil
	a.busyTime += now - a.busySince
	if !s.cfg.SkipGroupPopulation {
		s.col.GroupPopulationAdd(s.groupOf[idx], now, -1)
	}
	s.col.ArcWait(s.groupOf[idx], now, p.enqueuedAt, p.GenTime)

	// Start the next packet on this arc (never inside an outage window: the
	// outage-end handler restarts the arc).
	if a.queue.Len() > 0 && (s.arcDown == nil || !s.arcDown[idx]) {
		s.startService(idx, s.nextFromQueue(a), now)
	}

	// Transient fault: one dedicated-stream draw per completed transmission
	// decides whether this transmission failed, dropping the packet.
	if s.cfg.ArcFailProb > 0 && s.faultRNG.Float64() < s.cfg.ArcFailProb {
		s.drop(p, now, false)
		return
	}

	// Advance the completed packet.
	p.hop++
	if p.hop >= len(p.Path) {
		s.col.PacketLeft(now)
		s.recordDelivery(p, now)
		return
	}
	s.enqueue(p, now)
}

// recordDelivery updates delay statistics, invokes the delivery callback and
// recycles pooled packets.
func (s *System) recordDelivery(p *Packet, now float64) {
	s.col.Deliver(now, p.GenTime, len(p.Path), p.Class)
	if s.OnDeliver != nil {
		s.OnDeliver(p, now)
	}
	if p.pooled {
		s.releasePacket(p)
	}
}

// StartMeasurement discards the warm-up transient: delay statistics will only
// include packets generated from now on, and time-weighted statistics restart
// from the current state.
func (s *System) StartMeasurement() {
	now := s.Sim.Now()
	s.col.StartMeasurement(now)
	for i := range s.arcs {
		s.arcs[i].arrivals = 0
		s.arcs[i].busyTime = 0
		if s.arcs[i].inService != nil {
			s.arcs[i].busySince = now
		}
	}
}

// Metrics is the measurement snapshot returned by Snapshot.
type Metrics struct {
	// Elapsed is the length of the measurement window.
	Elapsed float64
	// MeanDelay is the average sojourn time of packets generated and
	// delivered inside the measurement window.
	MeanDelay float64
	// DelayStdDev is the standard deviation of those sojourn times.
	DelayStdDev float64
	// DelayCI95 is the 95% confidence half-width of MeanDelay (i.i.d.
	// approximation; the harness uses independent replications for rigorous
	// intervals).
	DelayCI95 float64
	// MaxDelay is the largest observed sojourn time.
	MaxDelay float64
	// MeanHops is the average path length of delivered packets.
	MeanHops float64
	// Delivered is the number of packets counted in the delay statistics.
	Delivered int64
	// Generated is the number of packets injected during the window.
	Generated int64
	// DroppedFault is the number of measured packets lost to transient
	// transmission faults (Config.ArcFailProb). Omitted from JSON when zero
	// so faultless results stay byte-identical to pre-fault output.
	DroppedFault int64 `json:",omitempty"`
	// DroppedOverflow is the number of measured packets lost to full finite
	// buffers (Config.BufferCapacity); JSON omission as for DroppedFault.
	DroppedOverflow int64 `json:",omitempty"`
	// Throughput is Delivered divided by Elapsed.
	Throughput float64
	// MeanPopulation is the time-averaged number of packets in flight.
	MeanPopulation float64
	// MaxPopulation is the peak number of packets in flight.
	MaxPopulation float64
	// InFlight is the number of packets still in the network at the end.
	InFlight int64
	// GroupMeanPopulation is the time-averaged population per statistics
	// group (e.g. per hypercube dimension).
	GroupMeanPopulation []float64
	// GroupArcUtilization is the mean fraction of busy time per arc in each
	// group.
	GroupArcUtilization []float64
	// GroupArrivalRate is the mean arrival rate per arc in each group.
	GroupArrivalRate []float64
	// GroupMeanWait is the mean time from joining an arc's queue to
	// finishing transmission, per group (populated only when EnablePerHopWait
	// was called; the minimum possible value is the service time).
	GroupMeanWait []float64
	// MeanDelayByClass reports mean delay per packet Class.
	MeanDelayByClass map[int]float64
	// PopulationSlope is the least-squares slope of the population trace
	// (packets per unit time); requires EnablePopulationTrace.
	PopulationSlope float64
	// LittleLawError is the relative discrepancy |L - lambda*W|/L over the
	// measurement window, an internal consistency check.
	LittleLawError float64
}

// DelayQuantile returns the exact q-quantile of measured delays; it requires
// EnableDelaySample and returns NaN otherwise.
func (s *System) DelayQuantile(q float64) float64 { return s.col.DelayQuantile(q) }

// DelaySample returns the measured per-packet delays when EnableDelaySample
// was called (nil otherwise); see Collector.DelaySample for the aliasing and
// ordering caveats.
func (s *System) DelaySample() []float64 { return s.col.DelaySample() }

// DelaySketch returns the delay quantile sketch when EnableDelaySketch was
// called (nil otherwise); the pointer aliases collector state, so callers
// that outlive the run must Clone it.
func (s *System) DelaySketch() *stats.DDSketch { return s.col.DelaySketch() }

// Snapshot closes the measurement window at the current simulation time and
// returns the collected metrics. The simulation can continue afterwards.
func (s *System) Snapshot() Metrics {
	now := s.Sim.Now()
	// Per-group utilisation and arrival-rate aggregates, accumulated in
	// arc-index order (the order matters bit-for-bit: the slot-stepped kernel
	// aggregates its arcs the same way so cross-kernel snapshots agree).
	n := s.cfg.NumGroups
	if cap(s.snapArcs) < n {
		s.snapArcs = make([]int, n)
		s.snapBusy = make([]float64, n)
		s.snapArrivals = make([]float64, n)
	}
	s.snapArcs = s.snapArcs[:n]
	s.snapBusy = s.snapBusy[:n]
	s.snapArrivals = s.snapArrivals[:n]
	for g := 0; g < n; g++ {
		s.snapArcs[g] = 0
		s.snapBusy[g] = 0
		s.snapArrivals[g] = 0
	}
	for i := range s.arcs {
		g := s.groupOf[i]
		s.snapArcs[g]++
		busy := s.arcs[i].busyTime
		if s.arcs[i].inService != nil {
			busy += now - s.arcs[i].busySince
		}
		s.snapBusy[g] += busy
		s.snapArrivals[g] += float64(s.arcs[i].arrivals)
	}
	return s.col.Snapshot(now, s.snapArcs, s.snapBusy, s.snapArrivals)
}

// QueueLength returns the number of packets at arc idx, including the one in
// service.
func (s *System) QueueLength(idx int) int {
	a := &s.arcs[idx]
	n := a.queue.Len()
	if a.inService != nil {
		n++
	}
	return n
}

// InFlight returns the current number of packets in the network.
func (s *System) InFlight() int64 { return s.col.InFlight() }

// TotalQueued returns the total number of packets across all arcs (queued or
// in service); it must equal InFlight and exists as an invariant check for
// tests.
func (s *System) TotalQueued() int64 {
	var total int64
	for i := range s.arcs {
		total += int64(s.QueueLength(i))
	}
	return total
}

// Drain runs the simulation until no packets remain in flight or until the
// event calendar empties. It returns the time at which the network drained.
// Sources must not schedule further injections for Drain to terminate.
// RunWhile already runs until the condition fails or the calendar empties, so
// no extra stepping is needed afterwards.
func (s *System) Drain() float64 {
	s.Sim.RunWhile(func() bool { return s.col.InFlight() > 0 })
	return s.Sim.Now()
}
