// Package network is the packet-level simulator of a store-and-forward
// interconnection network under the paper's communication assumptions (§1.1):
// every directed arc transmits one packet at a time with a deterministic unit
// transmission time, nodes have infinite buffers, a node may transmit on all
// its output ports simultaneously, and packets queue per output arc. The
// package is topology-agnostic: a packet carries its path as a sequence of
// dense arc indices (produced by internal/routing from a hypercube or
// butterfly topology), and the simulator provides the queueing, service and
// measurement machinery shared by every experiment.
package network

import (
	"fmt"
	"math"

	"repro/internal/des"
	"repro/internal/ringbuf"
	"repro/internal/stats"
	"repro/internal/xrand"
)

// Discipline selects how an arc picks the next packet from its queue.
type Discipline int

const (
	// FIFO serves packets in arrival order, the rule analysed by the paper.
	FIFO Discipline = iota
	// RandomOrder serves a uniformly random queued packet; it exists for the
	// arc-priority ablation (the paper's delay bounds do not depend on the
	// priority rule, only on the work-conserving property).
	RandomOrder
)

// String names the discipline.
func (d Discipline) String() string {
	switch d {
	case FIFO:
		return "fifo"
	case RandomOrder:
		return "random-order"
	default:
		return fmt.Sprintf("discipline(%d)", int(d))
	}
}

// Packet is one message travelling through the network.
type Packet struct {
	ID      int64
	Origin  int   // origin node identifier (topology-specific meaning)
	Dest    int   // destination node identifier
	Path    []int // dense arc indices remaining to traverse, in order
	GenTime float64
	Class   int // free-form tag (e.g. Valiant phase), reported per class
	hop     int
	// enqueuedAt is the time the packet joined its current arc's queue; it
	// feeds the per-group waiting-time statistics.
	enqueuedAt float64
	// pooled marks packets obtained from AcquirePacket; only those are
	// recycled onto the free list when delivered.
	pooled bool
}

// Hops returns the total number of arcs on the packet's path.
func (p *Packet) Hops() int { return len(p.Path) }

// Config describes a System.
type Config struct {
	// NumArcs is the number of servers (arcs) in the network.
	NumArcs int
	// GroupOf maps an arc index to a statistics group (hypercube dimension,
	// butterfly level/kind, ...). May be nil, in which case all arcs share
	// group 0.
	GroupOf func(arc int) int
	// NumGroups is the number of distinct groups produced by GroupOf.
	NumGroups int
	// ServiceTime is the deterministic transmission time per arc; the paper
	// uses 1 everywhere and that is the default when zero.
	ServiceTime float64
	// Discipline selects the queueing discipline at each arc.
	Discipline Discipline
	// Seed drives the randomness used by the RandomOrder discipline.
	Seed uint64
}

// arcState is the per-arc queue and busy/idle state.
type arcState struct {
	queue     ringbuf.Ring[*Packet]
	inService *Packet
	arrivals  int64
	busySince float64
	busyTime  float64
}

// evComplete is the typed-event kind for a service completion; owner is the
// arc index.
const evComplete int32 = 0

// maxDenseClass bounds the packet classes tracked in a dense slice instead of
// a map; the experiments use at most a handful of classes (Valiant phases,
// deflection priorities), so per-delivery map lookups would be pure overhead.
const maxDenseClass = 16

// System simulates a set of unit-service arcs fed with packets. It owns the
// event calendar; traffic sources schedule injection events on Sim.
type System struct {
	Sim *des.Simulator

	cfg     Config
	handler des.HandlerID
	svcCh   des.ChannelID // completions all use the same fixed ServiceTime
	arcs    []arcState
	// groupOf is the arc -> statistics group table, precomputed once at
	// NewSystem so the hot path never calls the cfg.GroupOf func.
	groupOf []int32
	rng     *xrand.Rand
	nextID  int64
	// pool is the free list of delivered pooled packets (see AcquirePacket).
	pool []*Packet

	// OnDeliver, when non-nil, is called for every packet that reaches its
	// destination, after statistics have been recorded. Pooled packets are
	// recycled when the callback returns, so it must not retain p.
	OnDeliver func(p *Packet, now float64)

	// Measurement state. Delay statistics include only packets generated at
	// or after measureFrom; time-weighted statistics are reset at that time.
	measureFrom float64
	delay       stats.Tally
	clsDense    [maxDenseClass]stats.Tally
	delayByCls  map[int]*stats.Tally // classes outside [0, maxDenseClass)
	hopCount    stats.Tally
	delaySample *stats.Quantiles
	population  stats.TimeWeighted
	groupPop    []stats.TimeWeighted
	groupWait   []stats.Tally
	perHopWait  bool
	departures  int64
	generated   int64
	inFlight    int64
	popTrace    stats.Series
	traceEvery  float64
	lastTrace   float64
}

// NewSystem builds a System from the configuration.
func NewSystem(cfg Config) *System {
	if cfg.NumArcs <= 0 {
		panic(fmt.Sprintf("network: NumArcs must be positive, got %d", cfg.NumArcs))
	}
	if cfg.ServiceTime == 0 {
		cfg.ServiceTime = 1
	}
	if cfg.ServiceTime < 0 {
		panic(fmt.Sprintf("network: negative service time %v", cfg.ServiceTime))
	}
	if cfg.GroupOf == nil {
		cfg.GroupOf = func(int) int { return 0 }
		cfg.NumGroups = 1
	}
	if cfg.NumGroups <= 0 {
		cfg.NumGroups = 1
	}
	s := &System{
		Sim:        des.New(),
		cfg:        cfg,
		arcs:       make([]arcState, cfg.NumArcs),
		groupOf:    make([]int32, cfg.NumArcs),
		rng:        xrand.NewStream(cfg.Seed, 0xD15C),
		groupPop:   make([]stats.TimeWeighted, cfg.NumGroups),
		delayByCls: make(map[int]*stats.Tally),
	}
	for i := range s.groupOf {
		g := cfg.GroupOf(i)
		if g < 0 || g >= cfg.NumGroups {
			panic(fmt.Sprintf("network: GroupOf(%d) = %d outside [0,%d)", i, g, cfg.NumGroups))
		}
		s.groupOf[i] = int32(g)
	}
	s.handler = s.Sim.RegisterHandler(s)
	s.svcCh = s.Sim.NewChannel()
	s.population.Set(0, 0)
	for g := range s.groupPop {
		s.groupPop[g].Set(0, 0)
	}
	return s
}

// HandleEvent dispatches the system's typed calendar events.
func (s *System) HandleEvent(kind, owner int32) {
	switch kind {
	case evComplete:
		s.completeService(int(owner))
	default:
		panic(fmt.Sprintf("network: unknown event kind %d", kind))
	}
}

// AcquirePacket returns a packet from the free list of delivered packets, or
// a new one when the list is empty. Acquired packets are recycled
// automatically when delivered, so a steady-state source injects without
// allocating; the Path slice keeps its capacity and is returned with length
// zero. Packets built directly with &Packet{} are never recycled.
func (s *System) AcquirePacket() *Packet {
	if n := len(s.pool); n > 0 {
		p := s.pool[n-1]
		s.pool[n-1] = nil
		s.pool = s.pool[:n-1]
		return p
	}
	return &Packet{pooled: true}
}

// releasePacket resets a delivered pooled packet and returns it to the free
// list.
func (s *System) releasePacket(p *Packet) {
	*p = Packet{Path: p.Path[:0], pooled: true}
	s.pool = append(s.pool, p)
}

// Config returns the configuration the system was built with.
func (s *System) Config() Config { return s.cfg }

// EnableDelaySample stores every measured delay so exact quantiles can be
// reported; it costs one float64 per delivered packet.
func (s *System) EnableDelaySample() { s.delaySample = &stats.Quantiles{} }

// EnablePerHopWait records, for every arc traversal, the time from joining
// the arc's queue to finishing transmission, aggregated per statistics group.
// The hypercube experiments use it to measure the per-dimension contention
// profile discussed at the end of §3.3.
func (s *System) EnablePerHopWait() {
	s.perHopWait = true
	s.groupWait = make([]stats.Tally, s.cfg.NumGroups)
}

// EnablePopulationTrace records the total population every interval time
// units (used by the stability experiments to estimate the growth slope).
func (s *System) EnablePopulationTrace(interval float64) {
	if interval <= 0 {
		panic("network: trace interval must be positive")
	}
	s.traceEvery = interval
}

// NewPacketID returns a fresh packet identifier.
func (s *System) NewPacketID() int64 {
	id := s.nextID
	s.nextID++
	return id
}

// Inject introduces a packet into the network at the current simulation time.
// A packet whose path is empty (origin equals destination) is delivered
// immediately with zero delay, exactly as in the model.
func (s *System) Inject(p *Packet) {
	now := s.Sim.Now()
	p.GenTime = now
	p.hop = 0
	s.generated++
	if len(p.Path) == 0 {
		s.recordDelivery(p, now)
		return
	}
	s.inFlight++
	s.setPopulation(now)
	s.enqueue(p, now)
}

// enqueue places the packet at its current arc and starts service if the arc
// is idle.
func (s *System) enqueue(p *Packet, now float64) {
	idx := p.Path[p.hop]
	if idx < 0 || idx >= len(s.arcs) {
		panic(fmt.Sprintf("network: packet %d path refers to arc %d outside [0,%d)", p.ID, idx, len(s.arcs)))
	}
	a := &s.arcs[idx]
	a.arrivals++
	p.enqueuedAt = now
	if a.inService == nil {
		s.startService(idx, p, now)
	} else {
		a.queue.Push(p)
	}
	s.setGroupPopulation(idx, now, +1)
}

// startService begins transmitting p on arc idx.
func (s *System) startService(idx int, p *Packet, now float64) {
	a := &s.arcs[idx]
	a.inService = p
	a.busySince = now
	s.Sim.ScheduleChannel(s.svcCh, s.cfg.ServiceTime, s.handler, evComplete, int32(idx))
}

// completeService finishes the transmission in progress on arc idx, advances
// the packet and starts the next queued transmission.
func (s *System) completeService(idx int) {
	now := s.Sim.Now()
	a := &s.arcs[idx]
	p := a.inService
	if p == nil {
		panic(fmt.Sprintf("network: completion on idle arc %d", idx))
	}
	a.inService = nil
	a.busyTime += now - a.busySince
	s.setGroupPopulation(idx, now, -1)
	if s.perHopWait && p.GenTime >= s.measureFrom {
		s.groupWait[s.groupOf[idx]].Add(now - p.enqueuedAt)
	}

	// Start the next packet on this arc.
	if a.queue.Len() > 0 {
		var next *Packet
		switch s.cfg.Discipline {
		case FIFO:
			next = a.queue.PopFront()
		case RandomOrder:
			next = a.queue.RemoveSwap(s.rng.Intn(a.queue.Len()))
		default:
			panic("network: unknown discipline")
		}
		s.startService(idx, next, now)
	}

	// Advance the completed packet.
	p.hop++
	if p.hop >= len(p.Path) {
		s.inFlight--
		s.setPopulation(now)
		s.recordDelivery(p, now)
		return
	}
	s.enqueue(p, now)
}

// recordDelivery updates delay statistics, invokes the delivery callback and
// recycles pooled packets.
func (s *System) recordDelivery(p *Packet, now float64) {
	if p.GenTime >= s.measureFrom {
		d := now - p.GenTime
		s.delay.Add(d)
		s.hopCount.Add(float64(len(p.Path)))
		if s.delaySample != nil {
			s.delaySample.Add(d)
		}
		if c := p.Class; c >= 0 && c < maxDenseClass {
			s.clsDense[c].Add(d)
		} else {
			t, ok := s.delayByCls[c]
			if !ok {
				t = &stats.Tally{}
				s.delayByCls[c] = t
			}
			t.Add(d)
		}
		s.departures++
	}
	if s.OnDeliver != nil {
		s.OnDeliver(p, now)
	}
	if p.pooled {
		s.releasePacket(p)
	}
}

func (s *System) setPopulation(now float64) {
	s.population.Set(now, float64(s.inFlight))
	if s.traceEvery > 0 && now-s.lastTrace >= s.traceEvery {
		s.popTrace.AddPoint(now, float64(s.inFlight))
		s.lastTrace = now
	}
}

func (s *System) setGroupPopulation(arcIdx int, now float64, delta float64) {
	g := s.groupOf[arcIdx] // validated against NumGroups at NewSystem
	s.groupPop[g].Add(now, delta)
}

// StartMeasurement discards the warm-up transient: delay statistics will only
// include packets generated from now on, and time-weighted statistics restart
// from the current state.
func (s *System) StartMeasurement() {
	now := s.Sim.Now()
	s.measureFrom = now
	s.delay = stats.Tally{}
	s.hopCount = stats.Tally{}
	s.clsDense = [maxDenseClass]stats.Tally{}
	s.delayByCls = make(map[int]*stats.Tally)
	if s.delaySample != nil {
		s.delaySample = &stats.Quantiles{}
	}
	s.departures = 0
	s.generated = 0
	if s.perHopWait {
		s.groupWait = make([]stats.Tally, s.cfg.NumGroups)
	}
	s.population.Reset(now, float64(s.inFlight))
	for g := range s.groupPop {
		s.groupPop[g].Reset(now, s.groupPop[g].Current())
	}
	for i := range s.arcs {
		s.arcs[i].arrivals = 0
		s.arcs[i].busyTime = 0
		if s.arcs[i].inService != nil {
			s.arcs[i].busySince = now
		}
	}
	s.popTrace = stats.Series{}
	s.lastTrace = now
}

// Metrics is the measurement snapshot returned by Snapshot.
type Metrics struct {
	// Elapsed is the length of the measurement window.
	Elapsed float64
	// MeanDelay is the average sojourn time of packets generated and
	// delivered inside the measurement window.
	MeanDelay float64
	// DelayStdDev is the standard deviation of those sojourn times.
	DelayStdDev float64
	// DelayCI95 is the 95% confidence half-width of MeanDelay (i.i.d.
	// approximation; the harness uses independent replications for rigorous
	// intervals).
	DelayCI95 float64
	// MaxDelay is the largest observed sojourn time.
	MaxDelay float64
	// MeanHops is the average path length of delivered packets.
	MeanHops float64
	// Delivered is the number of packets counted in the delay statistics.
	Delivered int64
	// Generated is the number of packets injected during the window.
	Generated int64
	// Throughput is Delivered divided by Elapsed.
	Throughput float64
	// MeanPopulation is the time-averaged number of packets in flight.
	MeanPopulation float64
	// MaxPopulation is the peak number of packets in flight.
	MaxPopulation float64
	// InFlight is the number of packets still in the network at the end.
	InFlight int64
	// GroupMeanPopulation is the time-averaged population per statistics
	// group (e.g. per hypercube dimension).
	GroupMeanPopulation []float64
	// GroupArcUtilization is the mean fraction of busy time per arc in each
	// group.
	GroupArcUtilization []float64
	// GroupArrivalRate is the mean arrival rate per arc in each group.
	GroupArrivalRate []float64
	// GroupMeanWait is the mean time from joining an arc's queue to
	// finishing transmission, per group (populated only when EnablePerHopWait
	// was called; the minimum possible value is the service time).
	GroupMeanWait []float64
	// MeanDelayByClass reports mean delay per packet Class.
	MeanDelayByClass map[int]float64
	// PopulationSlope is the least-squares slope of the population trace
	// (packets per unit time); requires EnablePopulationTrace.
	PopulationSlope float64
	// LittleLawError is the relative discrepancy |L - lambda*W|/L over the
	// measurement window, an internal consistency check.
	LittleLawError float64
}

// DelayQuantile returns the exact q-quantile of measured delays; it requires
// EnableDelaySample and returns NaN otherwise.
func (s *System) DelayQuantile(q float64) float64 {
	if s.delaySample == nil {
		return math.NaN()
	}
	return s.delaySample.Value(q)
}

// Snapshot closes the measurement window at the current simulation time and
// returns the collected metrics. The simulation can continue afterwards.
func (s *System) Snapshot() Metrics {
	now := s.Sim.Now()
	elapsed := now - s.measureFrom
	m := Metrics{
		Elapsed:             elapsed,
		MeanDelay:           s.delay.Mean(),
		DelayStdDev:         s.delay.StdDev(),
		DelayCI95:           s.delay.ConfidenceInterval(0.95),
		MaxDelay:            s.delay.Max(),
		MeanHops:            s.hopCount.Mean(),
		Delivered:           s.departures,
		Generated:           s.generated,
		MeanPopulation:      s.population.MeanAt(now),
		MaxPopulation:       s.population.Max(),
		InFlight:            s.inFlight,
		GroupMeanPopulation: make([]float64, len(s.groupPop)),
		GroupArcUtilization: make([]float64, len(s.groupPop)),
		GroupArrivalRate:    make([]float64, len(s.groupPop)),
		MeanDelayByClass:    make(map[int]float64, len(s.delayByCls)),
	}
	if elapsed > 0 {
		m.Throughput = float64(s.departures) / elapsed
	}
	for g := range s.groupPop {
		m.GroupMeanPopulation[g] = s.groupPop[g].MeanAt(now)
	}
	// Per-group utilisation and arrival rate.
	groupArcs := make([]int, len(s.groupPop))
	groupBusy := make([]float64, len(s.groupPop))
	groupArrivals := make([]float64, len(s.groupPop))
	for i := range s.arcs {
		g := s.groupOf[i]
		groupArcs[g]++
		busy := s.arcs[i].busyTime
		if s.arcs[i].inService != nil {
			busy += now - s.arcs[i].busySince
		}
		groupBusy[g] += busy
		groupArrivals[g] += float64(s.arcs[i].arrivals)
	}
	for g := range s.groupPop {
		if groupArcs[g] > 0 && elapsed > 0 {
			m.GroupArcUtilization[g] = groupBusy[g] / (float64(groupArcs[g]) * elapsed)
			m.GroupArrivalRate[g] = groupArrivals[g] / (float64(groupArcs[g]) * elapsed)
		}
	}
	for cls := range s.clsDense {
		if s.clsDense[cls].Count() > 0 {
			m.MeanDelayByClass[cls] = s.clsDense[cls].Mean()
		}
	}
	for cls, t := range s.delayByCls {
		m.MeanDelayByClass[cls] = t.Mean()
	}
	if s.perHopWait {
		m.GroupMeanWait = make([]float64, len(s.groupWait))
		for g := range s.groupWait {
			m.GroupMeanWait[g] = s.groupWait[g].Mean()
		}
	}
	if s.traceEvery > 0 {
		m.PopulationSlope = s.popTrace.LinearSlope()
	}
	// Little's law check: L vs (departure rate) * (mean delay).
	if elapsed > 0 && s.departures > 0 {
		lw := m.Throughput * m.MeanDelay
		denom := math.Max(m.MeanPopulation, 1e-12)
		m.LittleLawError = math.Abs(m.MeanPopulation-lw) / denom
	}
	return m
}

// QueueLength returns the number of packets at arc idx, including the one in
// service.
func (s *System) QueueLength(idx int) int {
	a := &s.arcs[idx]
	n := a.queue.Len()
	if a.inService != nil {
		n++
	}
	return n
}

// InFlight returns the current number of packets in the network.
func (s *System) InFlight() int64 { return s.inFlight }

// TotalQueued returns the total number of packets across all arcs (queued or
// in service); it must equal InFlight and exists as an invariant check for
// tests.
func (s *System) TotalQueued() int64 {
	var total int64
	for i := range s.arcs {
		total += int64(s.QueueLength(i))
	}
	return total
}

// Drain runs the simulation until no packets remain in flight or until the
// event calendar empties. It returns the time at which the network drained.
// Sources must not schedule further injections for Drain to terminate.
// RunWhile already runs until the condition fails or the calendar empties, so
// no extra stepping is needed afterwards.
func (s *System) Drain() float64 {
	s.Sim.RunWhile(func() bool { return s.inFlight > 0 })
	return s.Sim.Now()
}
