package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/harness"
	"repro/internal/jobs"
	"repro/sim"
)

// newWorker starts an in-process simd-equivalent: a real jobs.Manager behind
// httptest, running real simulations. mid optionally wraps the handler.
func newWorker(t *testing.T, mid func(http.Handler) http.Handler) *httptest.Server {
	t.Helper()
	m, err := jobs.NewManager(jobs.Config{StateDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	h := http.Handler(m.Handler())
	if mid != nil {
		h = mid(h)
	}
	srv := httptest.NewServer(h)
	t.Cleanup(func() {
		srv.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		m.Drain(ctx)
	})
	return srv
}

// clusterSweep is the small real sweep most tests shard: 6 points with split
// seeds, so any absolute-vs-local index slip changes bytes.
func clusterSweep() sim.Sweep {
	return sim.Sweep{
		Name: "cluster",
		Base: sim.Scenario{Topology: sim.Hypercube(3), P: 0.5, Horizon: 200, Seed: 7},
		Axes: []sim.Axis{
			{Field: "router", Values: sim.Strs("greedy", "deflection")},
			{Field: "load_factor", Values: sim.Nums(0.3, 0.6, 0.9)},
		},
		SplitSeeds: true,
	}
}

// wantJSONL runs the sweep in-process, single-machine — the bytes every
// cluster shape must reproduce.
func wantJSONL(t *testing.T, sw sim.Sweep) string {
	t.Helper()
	var out strings.Builder
	if _, err := sim.RunSweep(context.Background(), sw, sim.NewJSONLSink(&out)); err != nil {
		t.Fatal(err)
	}
	return out.String()
}

// runCluster builds a coordinator over the servers and runs the sweep to a
// JSONL string.
func runCluster(t *testing.T, cfg Config, sw sim.Sweep) (string, error) {
	t.Helper()
	if cfg.RetryBackoff == 0 {
		cfg.RetryBackoff = 5 * time.Millisecond
	}
	cfg.Logf = t.Logf
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	err = c.Run(context.Background(), sw, sim.NewJSONLSink(&out))
	return out.String(), err
}

func TestNewValidation(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		want string
	}{
		{"no workers", Config{}, "at least one"},
		{"empty worker URL", Config{Workers: []string{"http://a", ""}}, "empty base URL"},
		{"negative shards", Config{Workers: []string{"http://a"}, Shards: -1}, "non-negative"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := New(tc.cfg); err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want %q", err, tc.want)
			}
		})
	}
}

// TestClusterShapesByteIdentical is the core contract: for 1, 2 and 3
// workers (one shard each), the merged stream is byte-identical to the
// single-machine run.
func TestClusterShapesByteIdentical(t *testing.T) {
	sw := clusterSweep()
	want := wantJSONL(t, sw)
	for _, workers := range []int{1, 2, 3} {
		urls := make([]string, workers)
		for i := range urls {
			urls[i] = newWorker(t, nil).URL
		}
		got, err := runCluster(t, Config{Workers: urls}, sw)
		if err != nil {
			t.Fatalf("%d workers: %v", workers, err)
		}
		if got != want {
			t.Fatalf("%d workers: merged stream differs from single-machine run:\n%svs\n%s", workers, got, want)
		}
	}
}

// TestClusterRepoSpecsByteIdentical pins the acceptance criteria against the
// committed specs and goldens: sweep-smoke and fault-sweep, cluster shapes
// 1/2/3, merged JSONL byte-identical to specs/golden.
func TestClusterRepoSpecsByteIdentical(t *testing.T) {
	for _, spec := range []string{"sweep-smoke", "fault-sweep"} {
		sw, err := harness.LoadSweep(filepath.Join("..", "..", "specs", spec+".json"))
		if err != nil {
			t.Fatal(err)
		}
		goldenBytes, err := os.ReadFile(filepath.Join("..", "..", "specs", "golden", spec+".jsonl"))
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 2, 3} {
			urls := make([]string, workers)
			for i := range urls {
				urls[i] = newWorker(t, nil).URL
			}
			got, err := runCluster(t, Config{Workers: urls}, *sw)
			if err != nil {
				t.Fatalf("%s on %d workers: %v", spec, workers, err)
			}
			if got != string(goldenBytes) {
				t.Fatalf("%s on %d workers differs from the committed golden", spec, workers)
			}
		}
	}
}

// abortAfter cuts the response off (connection reset) after limit writes —
// the in-process stand-in for a worker SIGKILL'd mid-stream.
type abortAfter struct {
	http.ResponseWriter
	writes, limit int
}

func (w *abortAfter) Write(p []byte) (int, error) {
	w.writes++
	if w.writes > w.limit {
		panic(http.ErrAbortHandler)
	}
	return w.ResponseWriter.Write(p)
}

func (w *abortAfter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// TestClusterWorkerDiesMidShard kills the first row stream after one row:
// the shard's incomplete suffix is re-dispatched (to the other worker) and
// the merged output stays byte-identical.
func TestClusterWorkerDiesMidShard(t *testing.T) {
	sw := clusterSweep()
	want := wantJSONL(t, sw)
	var cut atomic.Bool
	abortFirstStream := func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if strings.HasSuffix(r.URL.Path, "/rows") && cut.CompareAndSwap(false, true) {
				next.ServeHTTP(&abortAfter{ResponseWriter: w, limit: 1}, r)
				return
			}
			next.ServeHTTP(w, r)
		})
	}
	w1 := newWorker(t, abortFirstStream)
	w2 := newWorker(t, abortFirstStream) // one shared cut: exactly one stream dies
	got, err := runCluster(t, Config{Workers: []string{w1.URL, w2.URL}}, sw)
	if err != nil {
		t.Fatal(err)
	}
	if !cut.Load() {
		t.Fatal("the abort middleware never fired; the test exercised nothing")
	}
	if got != want {
		t.Fatalf("merged stream after mid-shard death differs:\n%svs\n%s", got, want)
	}
}

// failSink errors after passing through n rows — the hook the crash-resume
// tests use to stop a coordinator run partway with points already journaled.
type failSink struct {
	inner sim.RowSink
	n     int
}

func (s *failSink) WriteRow(r sim.Row) error {
	if s.n <= 0 {
		return errors.New("sink full")
	}
	s.n--
	return s.inner.WriteRow(r)
}

// TestClusterCoordinatorCrashResume aborts a journaled coordinator run
// partway (a stand-in for a crash), then resumes it: the second run completes
// byte-identically, and once the journal is complete a third run needs no
// reachable worker at all.
func TestClusterCoordinatorCrashResume(t *testing.T) {
	sw := clusterSweep()
	want := wantJSONL(t, sw)
	state := t.TempDir()
	w := newWorker(t, nil)
	cfg := Config{Workers: []string{w.URL}, StateDir: state, RetryBackoff: 5 * time.Millisecond, Logf: t.Logf}

	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var first strings.Builder
	if err := c.Run(context.Background(), sw, &failSink{inner: sim.NewJSONLSink(&first), n: 2}); err == nil || !strings.Contains(err.Error(), "sink full") {
		t.Fatalf("aborted run err = %v, want the sink failure", err)
	}

	var second strings.Builder
	if err := c.Run(context.Background(), sw, sim.NewJSONLSink(&second)); err != nil {
		t.Fatal(err)
	}
	if second.String() != want {
		t.Fatalf("resumed run differs from single-machine stream:\n%svs\n%s", second.String(), want)
	}

	// Journal now complete: replay needs no worker. Point the coordinator at
	// a dead URL to prove it.
	dead := httptest.NewServer(http.NotFoundHandler())
	dead.Close()
	c2, err := New(Config{Workers: []string{dead.URL}, StateDir: state, ShardAttempts: 1, RetryBackoff: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	var third strings.Builder
	if err := c2.Run(context.Background(), sw, sim.NewJSONLSink(&third)); err != nil {
		t.Fatal(err)
	}
	if third.String() != want {
		t.Fatalf("journal replay differs:\n%svs\n%s", third.String(), want)
	}
}

// TestClusterJournalInteropWithRunSweep hands a partial coordinator journal
// to single-machine sim.RunSweep: because the coordinator journals under the
// parent spec in the sim checkpoint format, either side can finish what the
// other started, byte-identically.
func TestClusterJournalInteropWithRunSweep(t *testing.T) {
	sw := clusterSweep()
	want := wantJSONL(t, sw)
	state := t.TempDir()
	w := newWorker(t, nil)
	c, err := New(Config{Workers: []string{w.URL}, StateDir: state, RetryBackoff: 5 * time.Millisecond, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	var discard strings.Builder
	if err := c.Run(context.Background(), sw, &failSink{inner: sim.NewJSONLSink(&discard), n: 1}); err == nil {
		t.Fatal("aborted run unexpectedly succeeded")
	}

	fp, err := sw.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	resume := sw
	resume.CheckpointPath = filepath.Join(state, fp+".ckpt")
	var out strings.Builder
	if _, err := sim.RunSweep(context.Background(), resume, sim.NewJSONLSink(&out)); err != nil {
		t.Fatal(err)
	}
	if out.String() != want {
		t.Fatalf("RunSweep resume of a coordinator journal differs:\n%svs\n%s", out.String(), want)
	}
}

// TestClusterRejectsRangedSpec: shard ranges are coordinator-derived; an
// input spec that already carries one is refused.
func TestClusterRejectsRangedSpec(t *testing.T) {
	w := newWorker(t, nil)
	sw := clusterSweep()
	sw.Range = &sim.PointRange{Start: 0, Count: 2}
	if _, err := runCluster(t, Config{Workers: []string{w.URL}}, sw); err == nil || !strings.Contains(err.Error(), "must not carry a range") {
		t.Fatalf("err = %v, want the range rejection", err)
	}
}

// TestClusterAllWorkersDown: with no reachable worker, the run fails after
// the bounded attempts instead of hanging.
func TestClusterAllWorkersDown(t *testing.T) {
	dead := httptest.NewServer(http.NotFoundHandler())
	dead.Close()
	sw := clusterSweep()
	_, err := runCluster(t, Config{Workers: []string{dead.URL}, ShardAttempts: 2, RetryBackoff: time.Millisecond, ProbeTimeout: 200 * time.Millisecond}, sw)
	if err == nil || !strings.Contains(err.Error(), "no reachable worker") {
		t.Fatalf("err = %v, want the no-reachable-worker failure", err)
	}
}

// TestMergeByteVerification drives runState.merge directly: a worker line
// whose bytes differ from the coordinator's canonical rendering — even by
// insignificant JSON whitespace — is a fatal RowMismatchError, and duplicate
// deliveries are verified then dropped.
func TestMergeByteVerification(t *testing.T) {
	sw := clusterSweep()
	rows, err := sim.RunSweep(context.Background(), sw)
	if err != nil {
		t.Fatal(err)
	}
	skel, err := sw.ExpandRows()
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	st := &runState{sw: sw, rows: skel, sinks: []sim.RowSink{sim.NewJSONLSink(&out)}}

	line, err := json.Marshal(rows[0])
	if err != nil {
		t.Fatal(err)
	}
	line = append(line, '\n')

	// Whitespace-perturbed line: still parses, not canonical.
	tampered := []byte(strings.Replace(string(line), `{"point":0`, `{ "point":0`, 1))
	err = st.merge("w", 0, rows[0].Result, tampered)
	var mm *RowMismatchError
	if !errors.As(err, &mm) || mm.Point != 0 {
		t.Fatalf("tampered line err = %v, want a RowMismatchError for point 0", err)
	}
	var fe *fatalError
	if !errors.As(err, &fe) {
		t.Fatalf("mismatch must be fatal, got %v", err)
	}
	if st.done != 0 || out.Len() != 0 {
		t.Fatalf("tampered line was merged: done=%d out=%q", st.done, out.String())
	}

	// The genuine line merges and flushes.
	if err := st.merge("w", 0, rows[0].Result, line); err != nil {
		t.Fatal(err)
	}
	if st.done != 1 || out.String() != string(line) {
		t.Fatalf("merge result: done=%d out=%q", st.done, out.String())
	}
	// A duplicate delivery verifies and drops.
	if err := st.merge("w", 0, rows[0].Result, line); err != nil {
		t.Fatal(err)
	}
	if st.done != 1 || out.String() != string(line) {
		t.Fatalf("duplicate delivery was double-counted: done=%d", st.done)
	}
}
