// Package cluster is the sweep coordinator for a fleet of simd workers: it
// shards a sweep's point range across workers over the daemon HTTP API,
// merges the returned row streams into one strictly point-ordered output,
// and fails over when a worker vanishes mid-shard.
//
// The contract is byte-identity: for the same spec and seed, the merged
// JSONL (or CSV) stream is identical to a single-machine `cmd/sweep -json`
// run, whatever the cluster shape — one worker, three workers, or a run
// where a worker was SIGKILL'd halfway through its shard. Three properties
// of the existing stack make that cheap to guarantee:
//
//   - Sweep expansion is deterministic and point-indexed, so a contiguous
//     shard is just the parent spec restricted by sim.PointRange — the
//     worker computes exactly the rows the coordinator expects, absolute
//     point indices included (seed splitting keys on the absolute index).
//   - Row JSON is canonical and Results round-trip bit-exactly, so the
//     coordinator re-renders every received row from its own expansion and
//     byte-compares it against the worker's line; any skew (version drift, a
//     miscomputed shard) is detected at merge time, not in the output.
//   - The sim checkpoint journal is spec-fingerprint-bound and fsync'd, so
//     the coordinator journals merged points under the PARENT spec: its
//     journal is interchangeable with a single-machine `cmd/sweep
//     -checkpoint` journal, and a crashed coordinator resumes
//     byte-identically — as does a `cmd/sweep` run handed the same journal.
//
// Shard identity rides on job identity: each shard is submitted as the
// parent spec plus a range, so its job fingerprint is derived from the
// parent fingerprint plus the shard bounds. Resubmitting a shard attaches
// to the worker's existing job instead of re-running it, and failover
// re-dispatches only the incomplete point suffix [first-missing, shard-end)
// to a surviving worker.
package cluster

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"repro/internal/jobs"
	"repro/sim"
)

// Config parameterizes a Coordinator. Workers is required; every other
// field's zero value gets a sensible default from New.
type Config struct {
	// Workers lists the simd base URLs (e.g. http://host:9621). Required.
	Workers []string
	// StateDir, when non-empty, holds the coordinator's crash-recovery
	// journal (<parent-fingerprint>.ckpt — the same format and binding as
	// cmd/sweep -checkpoint). Empty disables journaling: a coordinator crash
	// then restarts the sweep from scratch.
	StateDir string
	// Shards is the number of contiguous shards to partition the sweep
	// into. 0 defaults to len(Workers); it is further clamped to the point
	// count so no shard is empty.
	Shards int
	// Client is the X-Client identity submitted jobs carry (fair-share
	// scheduling on the workers keys on it). Default "simc".
	Client string
	// ShardAttempts bounds how many times one shard is (re-)dispatched
	// before the run fails. Default 4.
	ShardAttempts int
	// RetryBackoff is the wait before a shard's second attempt, doubling
	// per attempt. Default 250ms.
	RetryBackoff time.Duration
	// ProbeTimeout bounds each /healthz probe during worker selection.
	// Default 2s.
	ProbeTimeout time.Duration
	// HTTPClient issues all requests. Default: a client with no global
	// timeout (row streams are long-lived; probes get per-request
	// deadlines).
	HTTPClient *http.Client
	// Logf, when non-nil, receives operational log lines (shard placement,
	// failover, retries).
	Logf func(format string, args ...any)
	// Progress, when non-nil, is called after every merged point with
	// (done, total). Called under the merge lock; keep it fast.
	Progress func(done, total int)
}

// Coordinator shards sweeps across simd workers. One Coordinator is safe
// for sequential reuse; a single Run is internally concurrent.
type Coordinator struct {
	cfg Config

	mu       sync.Mutex
	assigned map[string]int // shards placed per worker this run (tie-break)
}

// New validates the config and returns a Coordinator.
func New(cfg Config) (*Coordinator, error) {
	if len(cfg.Workers) == 0 {
		return nil, errors.New("cluster: Config.Workers must list at least one simd base URL")
	}
	for i, w := range cfg.Workers {
		cfg.Workers[i] = strings.TrimRight(w, "/")
		if cfg.Workers[i] == "" {
			return nil, fmt.Errorf("cluster: worker %d: empty base URL", i)
		}
	}
	if cfg.Shards < 0 {
		return nil, fmt.Errorf("cluster: Config.Shards %d must be non-negative", cfg.Shards)
	}
	if cfg.Client == "" {
		cfg.Client = "simc"
	}
	if cfg.ShardAttempts <= 0 {
		cfg.ShardAttempts = 4
	}
	if cfg.RetryBackoff <= 0 {
		cfg.RetryBackoff = 250 * time.Millisecond
	}
	if cfg.ProbeTimeout <= 0 {
		cfg.ProbeTimeout = 2 * time.Second
	}
	if cfg.HTTPClient == nil {
		cfg.HTTPClient = &http.Client{}
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	return &Coordinator{cfg: cfg, assigned: map[string]int{}}, nil
}

// RowMismatchError reports a worker row whose bytes differ from the
// coordinator's own rendering of the same point — version skew between simc
// and simd, or a worker that computed a different shard than asked. It is
// fatal: retrying on another worker of the same build would reproduce it,
// and silently preferring either side would break the byte-identity
// contract.
type RowMismatchError struct {
	Worker string
	Point  int
	Got    string // the worker's line, without the trailing newline
	Want   string // the coordinator's rendering
}

// Error names the worker, the point and both renderings.
func (e *RowMismatchError) Error() string {
	return fmt.Sprintf("cluster: worker %s returned a row for point %d that differs from the coordinator's rendering (version skew?):\n  worker:      %s\n  coordinator: %s",
		e.Worker, e.Point, e.Got, e.Want)
}

// fatalError marks an error that must abort the whole run instead of
// triggering shard failover: spec rejection, row mismatch, a sink failure,
// a deterministic worker-side sweep failure.
type fatalError struct{ err error }

func (e *fatalError) Error() string { return e.err.Error() }
func (e *fatalError) Unwrap() error { return e.err }

// fatal wraps err as non-retryable.
func fatal(err error) error { return &fatalError{err: err} }

// runState is one Run's merge state: the parent expansion's skeleton rows,
// filled in as workers deliver results, flushed to the sinks as a strictly
// point-ordered prefix, and journaled point by point.
type runState struct {
	mu       sync.Mutex
	sw       sim.Sweep
	rows     []sim.Row
	journal  *sim.SweepJournal // nil when journaling is disabled
	sinks    []sim.RowSink
	flushed  int // rows streamed to the sinks (contiguous prefix)
	done     int // points merged (not necessarily contiguous)
	progress func(done, total int)
}

// firstMissing returns the lowest point in [start, end) with no result yet,
// or ok == false when the range is complete.
func (st *runState) firstMissing(start, end int) (int, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	for i := start; i < end; i++ {
		if st.rows[i].Result == nil {
			return i, true
		}
	}
	return 0, false
}

// merge records one delivered point: byte-verifies the worker's line
// against the coordinator's own rendering, journals the result, and flushes
// any newly contiguous prefix through the sinks. Duplicate deliveries (a
// failover re-dispatch overlapping a slow first stream) are verified and
// dropped.
func (st *runState) merge(worker string, point int, res *sim.Result, line []byte) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	row := st.rows[point]
	row.Result = res
	want, err := json.Marshal(row)
	if err != nil {
		return fatal(fmt.Errorf("cluster: rendering point %d: %w", point, err))
	}
	if !bytes.Equal(want, bytes.TrimSuffix(line, []byte("\n"))) {
		return fatal(&RowMismatchError{Worker: worker, Point: point, Got: string(bytes.TrimSuffix(line, []byte("\n"))), Want: string(want)})
	}
	if st.rows[point].Result != nil {
		return nil // duplicate delivery
	}
	if st.journal != nil {
		if err := st.journal.Record(point, res); err != nil {
			return fatal(fmt.Errorf("cluster: journaling point %d: %w", point, err))
		}
	}
	st.rows[point].Result = res
	st.done++
	if st.progress != nil {
		st.progress(st.done, len(st.rows))
	}
	return st.flushLocked()
}

// flushLocked streams the contiguous completed prefix to the sinks.
func (st *runState) flushLocked() error {
	for st.flushed < len(st.rows) && st.rows[st.flushed].Result != nil {
		for _, sink := range st.sinks {
			if err := sink.WriteRow(st.rows[st.flushed]); err != nil {
				return fatal(fmt.Errorf("cluster: writing row %d: %w", st.flushed, err))
			}
		}
		st.flushed++
	}
	return nil
}

// Run shards the sweep across the workers and streams the merged rows to
// the sinks, strictly in point order, byte-identical to a single-machine
// run. The spec must be the parent sweep — a spec already carrying a range
// is rejected, because shard ranges are derived here and shard identity
// must trace back to the parent fingerprint.
func (c *Coordinator) Run(ctx context.Context, sw sim.Sweep, sinks ...sim.RowSink) error {
	if sw.Range != nil {
		return errors.New("cluster: the sweep spec must not carry a range: shard ranges are derived by the coordinator")
	}
	if err := sw.Validate(); err != nil {
		return err
	}
	rows, err := sw.ExpandRows()
	if err != nil {
		return err
	}
	n := len(rows)
	st := &runState{sw: sw, rows: rows, sinks: sinks, progress: c.cfg.Progress}

	if c.cfg.StateDir != "" {
		if err := os.MkdirAll(c.cfg.StateDir, 0o755); err != nil {
			return fmt.Errorf("cluster: creating state dir: %w", err)
		}
		fp, err := sw.Fingerprint()
		if err != nil {
			return err
		}
		j, err := sim.OpenSweepJournal(sw, filepath.Join(c.cfg.StateDir, fp+".ckpt"))
		if err != nil {
			return err
		}
		defer j.Close()
		st.journal = j
		if skipped := j.RecordsSkipped(); skipped > 0 {
			c.cfg.Logf("cluster: journal dropped %d unreadable records; those points re-run", skipped)
		}
		for i, res := range j.Restored() {
			if res != nil {
				st.rows[i].Result = res
				st.done++
			}
		}
		if st.done > 0 {
			c.cfg.Logf("cluster: resuming: %d/%d points journaled", st.done, n)
		}
	}
	st.mu.Lock()
	err = st.flushLocked()
	st.mu.Unlock()
	if err != nil {
		return errors.Unwrap(err)
	}
	if st.flushed == n {
		return nil // complete journal: replayed without any worker traffic
	}

	shards := c.cfg.Shards
	if shards == 0 {
		shards = len(c.cfg.Workers)
	}
	if shards > n {
		shards = n
	}
	c.mu.Lock()
	c.assigned = map[string]int{}
	c.mu.Unlock()

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	var wg sync.WaitGroup
	errCh := make(chan error, shards)
	for s := 0; s < shards; s++ {
		start, end := s*n/shards, (s+1)*n/shards
		wg.Add(1)
		go func(s, start, end int) {
			defer wg.Done()
			if err := c.runShard(runCtx, st, s, start, end); err != nil {
				errCh <- err
				cancel() // first failure stops the other shards
			}
		}(s, start, end)
	}
	wg.Wait()
	close(errCh)
	if err := <-errCh; err != nil {
		var fe *fatalError
		if errors.As(err, &fe) {
			return fe.err
		}
		return err
	}
	if st.flushed != n {
		return fmt.Errorf("cluster: internal error: %d of %d rows flushed after all shards completed", st.flushed, n)
	}
	return nil
}

// runShard drives one shard to completion: pick a worker, stream its rows,
// and on any retryable failure re-dispatch the incomplete suffix — to a
// different worker when one is available — with bounded doubling backoff.
func (c *Coordinator) runShard(ctx context.Context, st *runState, shard, start, end int) error {
	avoid := ""
	backoff := c.cfg.RetryBackoff
	for attempt := 1; ; attempt++ {
		miss, ok := st.firstMissing(start, end)
		if !ok {
			return nil
		}
		var rerr error
		worker, err := c.pickWorker(ctx, avoid)
		if err != nil {
			rerr = err
		} else {
			c.cfg.Logf("cluster: shard %d: dispatching points [%d, %d) to %s (attempt %d)", shard, miss, end, worker, attempt)
			rerr = c.streamShard(ctx, st, worker, miss, end)
			if rerr == nil {
				if _, missing := st.firstMissing(start, end); !missing {
					return nil
				}
				rerr = fmt.Errorf("cluster: worker %s closed the stream with shard %d incomplete", worker, shard)
			}
			avoid = worker
		}
		var fe *fatalError
		if errors.As(rerr, &fe) {
			return rerr
		}
		if ctx.Err() != nil {
			return ctx.Err()
		}
		if attempt >= c.cfg.ShardAttempts {
			return fmt.Errorf("cluster: shard %d (points [%d, %d)) failed after %d attempts: %w", shard, start, end, attempt, rerr)
		}
		c.cfg.Logf("cluster: shard %d attempt %d failed (%v); retrying in %v", shard, attempt, rerr, backoff)
		select {
		case <-time.After(backoff):
		case <-ctx.Done():
			return ctx.Err()
		}
		backoff *= 2
	}
}

// workerHealth is the slice of the simd /healthz document the placement
// probe reads.
type workerHealth struct {
	Queued   int  `json:"queued"`
	Active   int  `json:"active"`
	InFlight int  `json:"in_flight"`
	Draining bool `json:"draining"`
}

// pickWorker probes every worker's /healthz and returns the least-loaded
// reachable one (by in_flight, then by how many shards this run already
// placed on it, then by list order). A worker that just failed a shard
// (avoid) is penalized so failover prefers a different machine, but remains
// eligible when it is the only one alive. No reachable worker is a
// retryable error — the caller backs off and probes again.
func (c *Coordinator) pickWorker(ctx context.Context, avoid string) (string, error) {
	best, bestScore := "", 0
	for _, w := range c.cfg.Workers {
		h, err := c.probe(ctx, w)
		if err != nil {
			c.cfg.Logf("cluster: worker %s unreachable: %v", w, err)
			continue
		}
		if h.Draining {
			c.cfg.Logf("cluster: worker %s draining; skipping", w)
			continue
		}
		load := h.InFlight
		if load == 0 {
			load = h.Queued + h.Active // pre-gauge daemons
		}
		c.mu.Lock()
		score := load*2 + c.assigned[w]
		c.mu.Unlock()
		if w == avoid {
			score += 1 << 20
		}
		if best == "" || score < bestScore {
			best, bestScore = w, score
		}
	}
	if best == "" {
		return "", errors.New("cluster: no reachable worker")
	}
	c.mu.Lock()
	c.assigned[best]++
	c.mu.Unlock()
	return best, nil
}

// probe fetches one worker's /healthz under ProbeTimeout.
func (c *Coordinator) probe(ctx context.Context, worker string) (workerHealth, error) {
	pctx, cancel := context.WithTimeout(ctx, c.cfg.ProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(pctx, http.MethodGet, worker+"/healthz", nil)
	if err != nil {
		return workerHealth{}, err
	}
	resp, err := c.cfg.HTTPClient.Do(req)
	if err != nil {
		return workerHealth{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return workerHealth{}, fmt.Errorf("healthz = %d", resp.StatusCode)
	}
	var h workerHealth
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		return workerHealth{}, fmt.Errorf("decoding healthz: %w", err)
	}
	return h, nil
}

// wireRow is the slice of a worker row line the coordinator parses: the
// point index and the raw result. Everything else is verified by the byte
// comparison against the coordinator's own rendering.
type wireRow struct {
	Point  int             `json:"point"`
	Result json.RawMessage `json:"result"`
}

// maxRowLine bounds one row line read from a worker (a row is a few hundred
// bytes; the bound only guards against a misbehaving endpoint).
const maxRowLine = 1 << 20

// streamShard submits the suffix [start, end) of the parent sweep as a
// shard job on the worker and merges the streamed rows. It uses the async
// job API (submit + stream), NOT /v1/run: a run-stream's disconnect cancels
// the job terminally, which would make a coordinator hiccup poison the
// shard on that worker; a jobs-API disconnect leaves the job running, its
// rows ready for a cheap re-attach.
func (c *Coordinator) streamShard(ctx context.Context, st *runState, worker string, start, end int) error {
	shard := st.sw
	shard.Range = &sim.PointRange{Start: start, Count: end - start}
	spec, err := json.Marshal(shard)
	if err != nil {
		return fatal(fmt.Errorf("cluster: encoding shard spec: %w", err))
	}

	req, err := http.NewRequestWithContext(ctx, http.MethodPost, worker+"/v1/jobs", bytes.NewReader(spec))
	if err != nil {
		return fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Client", c.cfg.Client)
	resp, err := c.cfg.HTTPClient.Do(req)
	if err != nil {
		return fmt.Errorf("cluster: submitting shard to %s: %w", worker, err)
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxRowLine))
	resp.Body.Close()
	if err != nil {
		return fmt.Errorf("cluster: reading submit response from %s: %w", worker, err)
	}
	switch resp.StatusCode {
	case http.StatusOK, http.StatusAccepted:
	case http.StatusBadRequest:
		// The worker rejected the spec itself; another worker of the same
		// build would too.
		return fatal(fmt.Errorf("cluster: worker %s rejected the shard spec: %s", worker, strings.TrimSpace(string(body))))
	default:
		// Backpressure (429/503) and everything else: retryable.
		return fmt.Errorf("cluster: worker %s submit = %d: %s", worker, resp.StatusCode, strings.TrimSpace(string(body)))
	}
	var jst jobs.Status
	if err := json.Unmarshal(body, &jst); err != nil || jst.ID == "" {
		return fmt.Errorf("cluster: worker %s returned an unreadable job status: %v", worker, err)
	}

	req, err = http.NewRequestWithContext(ctx, http.MethodGet, worker+"/v1/jobs/"+jst.ID+"/rows", nil)
	if err != nil {
		return fatal(err)
	}
	resp, err = c.cfg.HTTPClient.Do(req)
	if err != nil {
		return fmt.Errorf("cluster: opening row stream on %s: %w", worker, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("cluster: worker %s rows = %d", worker, resp.StatusCode)
	}

	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64*1024), maxRowLine)
	expected := start
	for sc.Scan() {
		line := append(sc.Bytes(), '\n')
		var wr wireRow
		if err := json.Unmarshal(line, &wr); err != nil {
			// A torn line from a connection cut mid-row: retryable.
			return fmt.Errorf("cluster: worker %s sent an unparseable row line: %w", worker, err)
		}
		if wr.Point != expected {
			return fatal(fmt.Errorf("cluster: worker %s row stream out of order: got point %d, want %d", worker, wr.Point, expected))
		}
		res := new(sim.Result)
		if err := json.Unmarshal(wr.Result, res); err != nil {
			return fatal(fmt.Errorf("cluster: worker %s point %d: undecodable result: %w", worker, wr.Point, err))
		}
		if err := st.merge(worker, wr.Point, res, line); err != nil {
			return err
		}
		expected++
		if expected == end {
			return nil
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("cluster: reading rows from %s: %w", worker, err)
	}
	// The stream ended cleanly before delivering the whole shard: the job
	// reached a terminal state without producing every row. Ask why —
	// a failed job is deterministic (the sweep itself errors at some point)
	// and therefore fatal; anything else is retryable.
	if msg, terminalFailure := c.jobFailure(ctx, worker, jst.ID); terminalFailure {
		return fatal(fmt.Errorf("cluster: worker %s failed the shard: %s", worker, msg))
	}
	return fmt.Errorf("cluster: worker %s delivered %d of %d shard points", worker, expected-start, end-start)
}

// jobFailure asks the worker what became of a job whose stream ended early.
// It reports the failure message and whether the job failed deterministically.
func (c *Coordinator) jobFailure(ctx context.Context, worker, id string) (string, bool) {
	pctx, cancel := context.WithTimeout(ctx, c.cfg.ProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(pctx, http.MethodGet, worker+"/v1/jobs/"+id, nil)
	if err != nil {
		return "", false
	}
	resp, err := c.cfg.HTTPClient.Do(req)
	if err != nil {
		return "", false
	}
	defer resp.Body.Close()
	var jst jobs.Status
	if err := json.NewDecoder(resp.Body).Decode(&jst); err != nil {
		return "", false
	}
	if jst.State == jobs.StateFailed {
		return jst.Error, true
	}
	return "", false
}
