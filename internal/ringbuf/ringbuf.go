// Package ringbuf provides a head-indexed growable ring buffer used for the
// per-arc FIFO queues of the simulators. The previous queues were plain
// slices whose dequeue did an O(n) copy; at heavy traffic (rho close to 1,
// the regime the paper's bounds are about) queue lengths grow like
// 1/(1-rho), which made dequeue cost quadratic in the backlog. The ring
// dequeues in O(1), never copies on pop, and only allocates when it doubles
// its power-of-two capacity, so a steady-state service loop is
// allocation-free.
package ringbuf

// Ring is a FIFO ring buffer with O(1) push and pop. The zero value is an
// empty ring ready for use. Capacity grows by doubling and is always a power
// of two so positions reduce with a mask instead of a modulo.
type Ring[T any] struct {
	buf  []T
	head int
	n    int
}

// Len returns the number of buffered elements.
func (r *Ring[T]) Len() int { return r.n }

// Cap returns the current capacity.
func (r *Ring[T]) Cap() int { return len(r.buf) }

// Push appends v at the tail.
func (r *Ring[T]) Push(v T) {
	if r.n == len(r.buf) {
		r.grow()
	}
	r.buf[(r.head+r.n)&(len(r.buf)-1)] = v
	r.n++
}

// PopFront removes and returns the head element. It panics on an empty ring.
func (r *Ring[T]) PopFront() T {
	if r.n == 0 {
		panic("ringbuf: PopFront on empty ring")
	}
	v := r.buf[r.head]
	var zero T
	r.buf[r.head] = zero // release the reference for the GC
	r.head = (r.head + 1) & (len(r.buf) - 1)
	r.n--
	return v
}

// At returns the element at logical index i (0 is the head). It panics when
// i is out of range.
func (r *Ring[T]) At(i int) T {
	if i < 0 || i >= r.n {
		panic("ringbuf: index out of range")
	}
	return r.buf[(r.head+i)&(len(r.buf)-1)]
}

// RemoveSwap removes and returns the element at logical index i by moving the
// tail element into its place (the swap-remove idiom; relative order of the
// remaining elements is not preserved). It panics when i is out of range.
func (r *Ring[T]) RemoveSwap(i int) T {
	if i < 0 || i >= r.n {
		panic("ringbuf: index out of range")
	}
	mask := len(r.buf) - 1
	pos := (r.head + i) & mask
	last := (r.head + r.n - 1) & mask
	v := r.buf[pos]
	r.buf[pos] = r.buf[last]
	var zero T
	r.buf[last] = zero
	r.n--
	return v
}

// Clear empties the ring in place, zeroing the occupied slots so that any
// references they held are released, and keeps the allocated capacity for
// reuse.
func (r *Ring[T]) Clear() {
	var zero T
	mask := len(r.buf) - 1
	for i := 0; i < r.n; i++ {
		r.buf[(r.head+i)&mask] = zero
	}
	r.head, r.n = 0, 0
}

// grow doubles the capacity (starting at 8) and linearises the contents so
// head restarts at zero.
func (r *Ring[T]) grow() {
	newCap := 2 * len(r.buf)
	if newCap == 0 {
		newCap = 8
	}
	nb := make([]T, newCap)
	mask := len(r.buf) - 1
	for i := 0; i < r.n; i++ {
		nb[i] = r.buf[(r.head+i)&mask]
	}
	r.buf = nb
	r.head = 0
}
