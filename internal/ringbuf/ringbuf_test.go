package ringbuf

import (
	"testing"

	"repro/internal/xrand"
)

func TestPushPopFIFOOrder(t *testing.T) {
	var r Ring[int]
	for i := 0; i < 100; i++ {
		r.Push(i)
	}
	if r.Len() != 100 {
		t.Fatalf("Len = %d", r.Len())
	}
	for i := 0; i < 100; i++ {
		if v := r.PopFront(); v != i {
			t.Fatalf("PopFront = %d, want %d", v, i)
		}
	}
	if r.Len() != 0 {
		t.Fatalf("Len after drain = %d", r.Len())
	}
}

func TestWrapAround(t *testing.T) {
	// Interleave pushes and pops so head wraps around the capacity boundary
	// many times, checking FIFO order throughout.
	var r Ring[int]
	next, expect := 0, 0
	for round := 0; round < 200; round++ {
		for i := 0; i < 3; i++ {
			r.Push(next)
			next++
		}
		for i := 0; i < 2; i++ {
			if v := r.PopFront(); v != expect {
				t.Fatalf("round %d: PopFront = %d, want %d", round, v, expect)
			}
			expect++
		}
	}
	for r.Len() > 0 {
		if v := r.PopFront(); v != expect {
			t.Fatalf("drain: PopFront = %d, want %d", v, expect)
		}
		expect++
	}
	if expect != next {
		t.Fatalf("popped %d values, pushed %d", expect, next)
	}
}

func TestAt(t *testing.T) {
	var r Ring[int]
	// Force a wrapped layout: fill past one growth, pop a few, push more.
	for i := 0; i < 10; i++ {
		r.Push(i)
	}
	for i := 0; i < 5; i++ {
		r.PopFront()
	}
	for i := 10; i < 14; i++ {
		r.Push(i)
	}
	for i := 0; i < r.Len(); i++ {
		if v := r.At(i); v != 5+i {
			t.Fatalf("At(%d) = %d, want %d", i, v, 5+i)
		}
	}
}

func TestRemoveSwapMatchesSliceSwapRemove(t *testing.T) {
	// RemoveSwap must behave exactly like the slice idiom the random-order
	// discipline used: q[i] = q[len-1]; q = q[:len-1]. Run both against the
	// same random operation sequence and compare contents at every step.
	rng := xrand.New(7)
	var r Ring[int]
	var ref []int
	next := 0
	for op := 0; op < 5000; op++ {
		if r.Len() == 0 || rng.Bernoulli(0.6) {
			r.Push(next)
			ref = append(ref, next)
			next++
			continue
		}
		k := rng.Intn(len(ref))
		got := r.RemoveSwap(k)
		want := ref[k]
		ref[k] = ref[len(ref)-1]
		ref = ref[:len(ref)-1]
		if got != want {
			t.Fatalf("op %d: RemoveSwap(%d) = %d, want %d", op, k, got, want)
		}
		if r.Len() != len(ref) {
			t.Fatalf("op %d: Len = %d, want %d", op, r.Len(), len(ref))
		}
	}
	for i := range ref {
		if r.At(i) != ref[i] {
			t.Fatalf("final contents diverge at %d: %d vs %d", i, r.At(i), ref[i])
		}
	}
}

func TestPopEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	var r Ring[int]
	r.PopFront()
}

func TestAtOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	var r Ring[int]
	r.Push(1)
	r.At(1)
}

func TestSteadyStateZeroAllocs(t *testing.T) {
	var r Ring[*int]
	v := new(int)
	// Warm up to steady-state capacity.
	for i := 0; i < 16; i++ {
		r.Push(v)
	}
	for r.Len() > 0 {
		r.PopFront()
	}
	allocs := testing.AllocsPerRun(100, func() {
		for i := 0; i < 16; i++ {
			r.Push(v)
		}
		for r.Len() > 0 {
			r.PopFront()
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state push/pop allocates %v per run, want 0", allocs)
	}
}

// BenchmarkRingPushPop measures the steady-state FIFO cycle: the queue holds
// a backlog and every service pushes one arrival and pops one departure.
func BenchmarkRingPushPop(b *testing.B) {
	var r Ring[*int]
	v := new(int)
	for i := 0; i < 64; i++ {
		r.Push(v)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Push(v)
		r.PopFront()
	}
}

// BenchmarkSliceCopyDequeue is the pre-ring baseline for comparison: the
// O(n) copy dequeue the arc queues used before.
func BenchmarkSliceCopyDequeue(b *testing.B) {
	q := make([]*int, 0, 128)
	v := new(int)
	for i := 0; i < 64; i++ {
		q = append(q, v)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q = append(q, v)
		copy(q, q[1:])
		q[len(q)-1] = nil
		q = q[:len(q)-1]
	}
}
