// Package queuenet implements the paper's central proof device: the
// equivalent queueing network. Under greedy dimension-order routing the
// d-cube behaves as a levelled network Q of deterministic unit-service FIFO
// servers (one per arc) with Markovian routing (§3.1, Properties A-C), and
// the butterfly behaves as the analogous network R (§4.3). The paper bounds
// the delay of Q by replacing every FIFO server with a Processor-Sharing
// server, obtaining a product-form network Q̃ whose population stochastically
// dominates that of Q (Lemmas 7-10, Proposition 11).
//
// This package builds the specifications of Q and R from the model
// parameters, solves their traffic equations and product-form solutions
// analytically, and simulates both the FIFO and the PS versions on a common
// sample path (identical external arrivals and identical per-server routing
// decision sequences), which is exactly the coupling used in the paper's
// sample-path lemmas. The experiments use it to verify the domination
// B_FIFO(t) >= B_PS(t) and the product-form prediction for Q̃.
package queuenet

import (
	"fmt"
	"math"

	"repro/internal/butterfly"
	"repro/internal/des"
	"repro/internal/hypercube"
	"repro/internal/queueing"
	"repro/internal/ringbuf"
	"repro/internal/stats"
	"repro/internal/xrand"
)

// Transition is one Markovian routing alternative out of a server.
type Transition struct {
	To   int
	Prob float64
}

// Spec describes a queueing network with deterministic servers and Markovian
// routing. The probability of exiting the network after service at server s
// is one minus the sum of the transition probabilities out of s.
type Spec struct {
	// NumServers is the number of servers ("arcs").
	NumServers int
	// ServiceTime is the deterministic service requirement (1 in the paper).
	ServiceTime float64
	// ExternalRate is the external Poisson arrival rate into each server.
	ExternalRate []float64
	// Transitions lists, for each server, the Markovian routing
	// alternatives; probabilities must be non-negative and sum to at most 1.
	Transitions [][]Transition
	// Level optionally assigns each server to a level of the levelled
	// network; transitions must then go strictly upwards. A nil Level skips
	// the levelled check.
	Level []int
}

// Validate checks the structural invariants of the specification.
func (s *Spec) Validate() error {
	if s.NumServers <= 0 {
		return fmt.Errorf("queuenet: NumServers must be positive, got %d", s.NumServers)
	}
	if s.ServiceTime <= 0 {
		return fmt.Errorf("queuenet: ServiceTime must be positive, got %v", s.ServiceTime)
	}
	if len(s.ExternalRate) != s.NumServers {
		return fmt.Errorf("queuenet: ExternalRate has %d entries, want %d", len(s.ExternalRate), s.NumServers)
	}
	if len(s.Transitions) != s.NumServers {
		return fmt.Errorf("queuenet: Transitions has %d entries, want %d", len(s.Transitions), s.NumServers)
	}
	for i, r := range s.ExternalRate {
		if r < 0 || math.IsNaN(r) {
			return fmt.Errorf("queuenet: negative external rate %v at server %d", r, i)
		}
	}
	for i, ts := range s.Transitions {
		sum := 0.0
		for _, tr := range ts {
			if tr.To < 0 || tr.To >= s.NumServers {
				return fmt.Errorf("queuenet: server %d routes to invalid server %d", i, tr.To)
			}
			if tr.Prob < 0 {
				return fmt.Errorf("queuenet: negative transition probability at server %d", i)
			}
			if s.Level != nil && s.Level[tr.To] <= s.Level[i] {
				return fmt.Errorf("queuenet: transition %d->%d does not go up a level", i, tr.To)
			}
			sum += tr.Prob
		}
		if sum > 1+1e-9 {
			return fmt.Errorf("queuenet: transition probabilities out of server %d sum to %v > 1", i, sum)
		}
	}
	return nil
}

// ExitProb returns the probability of leaving the network after service at
// server s.
func (s *Spec) ExitProb(server int) float64 {
	sum := 0.0
	for _, tr := range s.Transitions[server] {
		sum += tr.Prob
	}
	if sum > 1 {
		return 0
	}
	return 1 - sum
}

// TotalExternalRate returns the sum of external arrival rates.
func (s *Spec) TotalExternalRate() float64 {
	total := 0.0
	for _, r := range s.ExternalRate {
		total += r
	}
	return total
}

// TotalArrivalRates solves the traffic equations lambda = external + lambda*P
// by fixed-point iteration; for the levelled (feed-forward) networks of the
// paper the iteration converges in at most "number of levels" passes.
func (s *Spec) TotalArrivalRates() []float64 {
	rates := make([]float64, s.NumServers)
	copy(rates, s.ExternalRate)
	next := make([]float64, s.NumServers)
	for iter := 0; iter < s.NumServers+2; iter++ {
		copy(next, s.ExternalRate)
		for i, ts := range s.Transitions {
			for _, tr := range ts {
				next[tr.To] += rates[i] * tr.Prob
			}
		}
		maxDiff := 0.0
		for i := range rates {
			if d := math.Abs(next[i] - rates[i]); d > maxDiff {
				maxDiff = d
			}
		}
		rates, next = next, rates
		if maxDiff < 1e-12 {
			break
		}
	}
	return rates
}

// Utilizations returns the per-server utilisation rho_s = lambda_s * service.
func (s *Spec) Utilizations() []float64 {
	rates := s.TotalArrivalRates()
	util := make([]float64, len(rates))
	for i, r := range rates {
		util[i] = r * s.ServiceTime
	}
	return util
}

// MaxUtilization returns the largest per-server utilisation, the quantity
// whose being below one is the paper's stability condition (Props 6 and 16).
func (s *Spec) MaxUtilization() float64 {
	m := 0.0
	for _, u := range s.Utilizations() {
		if u > m {
			m = u
		}
	}
	return m
}

// ProductFormMeanPopulation returns the steady-state mean total population of
// the processor-sharing (product-form) version of the network: the sum of
// rho/(1-rho) over servers (used in the proofs of Props 12 and 17).
func (s *Spec) ProductFormMeanPopulation() (float64, error) {
	total := 0.0
	for _, u := range s.Utilizations() {
		st := queueing.ProductFormStation{Utilization: u}
		m, err := st.MeanNumber()
		if err != nil {
			return math.Inf(1), err
		}
		total += m
	}
	return total, nil
}

// ProductFormMeanDelay applies Little's law to the product-form population.
func (s *Spec) ProductFormMeanDelay() (float64, error) {
	pop, err := s.ProductFormMeanPopulation()
	if err != nil {
		return pop, err
	}
	ext := s.TotalExternalRate()
	if ext <= 0 {
		return 0, fmt.Errorf("queuenet: network has no external arrivals")
	}
	return pop / ext, nil
}

// HypercubeSpec builds the equivalent network Q of the d-cube under greedy
// dimension-order routing with per-node rate lambda and bit-flip probability
// p, following Properties A-C of §3.1:
//
//   - the external stream into arc (x, x⊕e_i) is Poisson with rate
//     lambda·p·(1-p)^(i-1);
//   - after service at (y, y⊕e_i), a customer joins the arc of dimension
//     j > i leaving node y⊕e_i with probability p·(1-p)^(j-i-1), and exits
//     with probability (1-p)^(d-i).
func HypercubeSpec(d int, lambda, p float64) *Spec {
	cube := hypercube.New(d)
	n := cube.NumArcs()
	spec := &Spec{
		NumServers:   n,
		ServiceTime:  1,
		ExternalRate: make([]float64, n),
		Transitions:  make([][]Transition, n),
		Level:        make([]int, n),
	}
	for idx := 0; idx < n; idx++ {
		arc := cube.ArcAt(idx)
		i := int(arc.Dim)
		spec.Level[idx] = i
		spec.ExternalRate[idx] = lambda * p * math.Pow(1-p, float64(i-1))
		next := arc.To // node y ⊕ e_i
		var ts []Transition
		for j := i + 1; j <= d; j++ {
			prob := p * math.Pow(1-p, float64(j-i-1))
			if prob <= 0 {
				continue
			}
			to := cube.ArcIndex(cube.Arc(next, hypercube.Dimension(j)))
			ts = append(ts, Transition{To: to, Prob: prob})
		}
		spec.Transitions[idx] = ts
	}
	return spec
}

// ButterflySpec builds the equivalent network R of the d-dimensional
// butterfly under greedy routing (§4.3, Properties A-B): external Poisson
// arrivals of rate lambda·p into each level-1 vertical arc and lambda·(1-p)
// into each level-1 straight arc; after any level-j arc the customer
// continues straight with probability 1-p and vertically with probability p,
// and exits after level d.
func ButterflySpec(d int, lambda, p float64) *Spec {
	bf := butterfly.New(d)
	n := bf.NumArcs()
	spec := &Spec{
		NumServers:   n,
		ServiceTime:  1,
		ExternalRate: make([]float64, n),
		Transitions:  make([][]Transition, n),
		Level:        make([]int, n),
	}
	for idx := 0; idx < n; idx++ {
		arc := bf.ArcAt(idx)
		j := int(arc.Level)
		spec.Level[idx] = j
		if j == 1 {
			if arc.Kind == butterfly.Vertical {
				spec.ExternalRate[idx] = lambda * p
			} else {
				spec.ExternalRate[idx] = lambda * (1 - p)
			}
		}
		if j == d {
			spec.Transitions[idx] = nil
			continue
		}
		dest := bf.Dest(arc)
		straight := bf.ArcIndex(bf.Arc(dest.Row, dest.Level, butterfly.Straight))
		vertical := bf.ArcIndex(bf.Arc(dest.Row, dest.Level, butterfly.Vertical))
		var ts []Transition
		if 1-p > 0 {
			ts = append(ts, Transition{To: straight, Prob: 1 - p})
		}
		if p > 0 {
			ts = append(ts, Transition{To: vertical, Prob: p})
		}
		spec.Transitions[idx] = ts
	}
	return spec
}

// SamplePath is the common randomness shared by the FIFO and PS simulations:
// the external arrival times into every server and, for every server, the
// sequence of routing decisions indexed by service-completion order (-1 means
// "exit the network"). Identifying routing decisions by order rather than by
// customer identity is legitimate because routing is Markovian, and it is the
// coupling used in the proof of Lemma 10. Decision sequences are materialised
// lazily: both disciplines read the k-th decision of a server through
// Decision, so they always observe identical values no matter how many
// decisions each run consumes.
type SamplePath struct {
	Arrivals  [][]float64
	Horizon   float64
	spec      *Spec
	decisions [][]int
	decRNG    []*xrand.Rand
}

// GenerateSamplePath draws a sample path for the given specification up to
// the horizon.
func GenerateSamplePath(spec *Spec, horizon float64, seed uint64) *SamplePath {
	if err := spec.Validate(); err != nil {
		panic(err)
	}
	if horizon <= 0 {
		panic("queuenet: horizon must be positive")
	}
	sp := &SamplePath{
		Arrivals:  make([][]float64, spec.NumServers),
		Horizon:   horizon,
		spec:      spec,
		decisions: make([][]int, spec.NumServers),
		decRNG:    make([]*xrand.Rand, spec.NumServers),
	}
	for s := 0; s < spec.NumServers; s++ {
		sp.decRNG[s] = xrand.NewStream(seed^0x9e3779b97f4a7c15, uint64(s))
		rate := spec.ExternalRate[s]
		if rate <= 0 {
			continue
		}
		rng := xrand.NewStream(seed, uint64(s))
		t := 0.0
		for {
			t += rng.Exp(rate)
			if t > horizon {
				break
			}
			sp.Arrivals[s] = append(sp.Arrivals[s], t)
		}
	}
	return sp
}

// Decision returns the k-th routing decision at server s (0-based), drawing
// and memoising further decisions as needed so that every run over this
// sample path sees the same sequence.
func (sp *SamplePath) Decision(s, k int) int {
	for len(sp.decisions[s]) <= k {
		sp.decisions[s] = append(sp.decisions[s], drawDecision(sp.spec, s, sp.decRNG[s]))
	}
	return sp.decisions[s][k]
}

// TotalArrivals returns the number of external arrivals on the sample path.
func (sp *SamplePath) TotalArrivals() int {
	total := 0
	for _, a := range sp.Arrivals {
		total += len(a)
	}
	return total
}

// drawDecision samples the next server (or -1 for exit) after a service
// completion at server s.
func drawDecision(spec *Spec, s int, rng *xrand.Rand) int {
	u := rng.Float64()
	acc := 0.0
	for _, tr := range spec.Transitions[s] {
		acc += tr.Prob
		if u < acc {
			return tr.To
		}
	}
	return -1
}

// Observation is a time point at which both simulations report their state.
type Observation struct {
	Time       float64
	Departures int64
	Population int64
}

// Result summarises one simulation run over a sample path.
type Result struct {
	// Observations are the sampled (time, cumulative departures, population)
	// triples, at the times requested in RunOptions.
	Observations []Observation
	// MeanDelay is the average time from external arrival to network exit
	// for customers that left the network before the horizon.
	MeanDelay float64
	// DelayCount is the number of customers in that average.
	DelayCount int64
	// MeanPopulation is the time-averaged total population over
	// [warmup, horizon].
	MeanPopulation float64
	// PerServerMeanNumber is the time-averaged number of customers at each
	// server over the same window.
	PerServerMeanNumber []float64
	// Departed is the total number of customers that left the network.
	Departed int64
}

// RunOptions controls a simulation run.
type RunOptions struct {
	// ObserveEvery requests an Observation every so many time units
	// (0 disables observations).
	ObserveEvery float64
	// Warmup is discarded from the time-averaged statistics.
	Warmup float64
}

// customer tracks one packet travelling through the network. Customers are
// recycled through a free list when they leave the network, so steady-state
// simulation does not allocate per arrival.
type customer struct {
	arrival   float64
	remaining float64 // PS only
}

// RunFIFO simulates the network with FIFO servers on the given sample path.
func RunFIFO(spec *Spec, sp *SamplePath, opts RunOptions) Result {
	return runDiscipline(spec, sp, opts, false)
}

// RunPS simulates the network with Processor-Sharing servers on the same
// sample path.
func RunPS(spec *Spec, sp *SamplePath, opts RunOptions) Result {
	return runDiscipline(spec, sp, opts, true)
}

type serverState struct {
	// FIFO state.
	queue     ringbuf.Ring[*customer]
	inService *customer
	// PS state.
	customers  []*customer
	lastUpdate float64
	completion des.EventRef
	// Shared.
	decisionsUsed int
	occupancy     stats.TimeWeighted
}

// Typed-event kinds of the runner; owner is the server index (unused for
// observations and the warmup reset).
const (
	kArrival int32 = iota
	kComplete
	kObserve
	kWarmup
)

// runner holds the state of one simulation run over a sample path. All event
// dispatch goes through the typed calendar: one value event per external
// arrival, service completion, observation and warmup reset, so the run is
// allocation-free in steady state apart from the memoised routing decisions.
type runner struct {
	spec *Spec
	sp   *SamplePath
	sim  *des.Simulator
	ps   bool
	h    des.HandlerID
	// svcCh carries the FIFO completions; they all use the same fixed
	// ServiceTime, so they fire in schedule order. PS completions have
	// variable residual times and must stay on the heap (cancellable).
	svcCh des.ChannelID

	servers    []serverState
	population stats.TimeWeighted
	inNetwork  int64
	departed   int64
	delaySum   float64
	delayCount int64
	free       []*customer // recycled customers
	res        *Result
	warmupAt   float64
}

func (r *runner) newCustomer(arrival float64) *customer {
	if n := len(r.free); n > 0 {
		c := r.free[n-1]
		r.free[n-1] = nil
		r.free = r.free[:n-1]
		c.arrival = arrival
		c.remaining = 0
		return c
	}
	return &customer{arrival: arrival}
}

func (r *runner) nextDecision(s int) int {
	st := &r.servers[s]
	d := r.sp.Decision(s, st.decisionsUsed)
	st.decisionsUsed++
	return d
}

func (r *runner) departNetwork(c *customer) {
	now := r.sim.Now()
	r.inNetwork--
	r.population.Set(now, float64(r.inNetwork))
	r.departed++
	r.delaySum += now - c.arrival
	r.delayCount++
	r.free = append(r.free, c)
}

// HandleEvent dispatches one typed calendar event.
func (r *runner) HandleEvent(kind, owner int32) {
	switch kind {
	case kArrival:
		now := r.sim.Now()
		c := r.newCustomer(now)
		r.inNetwork++
		r.population.Set(now, float64(r.inNetwork))
		r.enqueue(int(owner), c)
	case kComplete:
		if r.ps {
			r.psComplete(int(owner))
		} else {
			r.fifoComplete(int(owner))
		}
	case kObserve:
		r.res.Observations = append(r.res.Observations, Observation{
			Time:       r.sim.Now(),
			Departures: r.departed,
			Population: r.inNetwork,
		})
	case kWarmup:
		r.population.Reset(r.warmupAt, float64(r.inNetwork))
		for i := range r.servers {
			r.servers[i].occupancy.Reset(r.warmupAt, r.servers[i].occupancy.Current())
		}
	default:
		panic(fmt.Sprintf("queuenet: unknown event kind %d", kind))
	}
}

// FIFO machinery ---------------------------------------------------------

func (r *runner) fifoStart(s int, c *customer) {
	r.servers[s].inService = c
	r.sim.ScheduleChannel(r.svcCh, r.spec.ServiceTime, r.h, kComplete, int32(s))
}

func (r *runner) fifoComplete(s int) {
	now := r.sim.Now()
	st := &r.servers[s]
	c := st.inService
	st.inService = nil
	st.occupancy.Set(now, float64(st.queue.Len()))
	if st.queue.Len() > 0 {
		r.fifoStart(s, st.queue.PopFront())
	}
	to := r.nextDecision(s)
	if to < 0 {
		r.departNetwork(c)
	} else {
		r.enqueue(to, c)
	}
}

// PS machinery -----------------------------------------------------------

func (r *runner) psUpdateWork(s int, now float64) {
	st := &r.servers[s]
	n := len(st.customers)
	if n > 0 {
		elapsed := now - st.lastUpdate
		if elapsed > 0 {
			share := elapsed / float64(n)
			for _, c := range st.customers {
				c.remaining -= share
			}
		}
	}
	st.lastUpdate = now
}

func (r *runner) psComplete(s int) {
	now := r.sim.Now()
	st := &r.servers[s]
	r.psUpdateWork(s, now)
	// Find the customer with the least remaining work (ties: first in
	// slice order, which is arrival order).
	best := -1
	for i, c := range st.customers {
		if best < 0 || c.remaining < st.customers[best].remaining-1e-15 {
			best = i
		}
	}
	if best < 0 {
		panic("queuenet: PS completion with no customers")
	}
	c := st.customers[best]
	st.customers = append(st.customers[:best], st.customers[best+1:]...)
	st.occupancy.Set(now, float64(len(st.customers)))
	st.completion = des.EventRef{}
	r.psReschedule(s)
	to := r.nextDecision(s)
	if to < 0 {
		r.departNetwork(c)
	} else {
		r.enqueue(to, c)
	}
}

func (r *runner) psReschedule(s int) {
	st := &r.servers[s]
	r.sim.CancelRef(st.completion) // no-op for the zero ref
	st.completion = des.EventRef{}
	if len(st.customers) == 0 {
		return
	}
	minRemaining := math.Inf(1)
	for _, c := range st.customers {
		if c.remaining < minRemaining {
			minRemaining = c.remaining
		}
	}
	if minRemaining < 0 {
		minRemaining = 0
	}
	delay := minRemaining * float64(len(st.customers))
	st.completion = r.sim.ScheduleCancellable(delay, r.h, kComplete, int32(s))
}

func (r *runner) enqueue(s int, c *customer) {
	now := r.sim.Now()
	st := &r.servers[s]
	if r.ps {
		r.psUpdateWork(s, now)
		c.remaining = r.spec.ServiceTime
		st.customers = append(st.customers, c)
		st.occupancy.Set(now, float64(len(st.customers)))
		r.psReschedule(s)
		return
	}
	if st.inService == nil {
		r.fifoStart(s, c)
	} else {
		st.queue.Push(c)
	}
	n := st.queue.Len()
	if st.inService != nil {
		n++
	}
	st.occupancy.Set(now, float64(n))
}

func runDiscipline(spec *Spec, sp *SamplePath, opts RunOptions, ps bool) Result {
	if err := spec.Validate(); err != nil {
		panic(err)
	}
	res := Result{PerServerMeanNumber: make([]float64, spec.NumServers)}
	r := &runner{
		spec:    spec,
		sp:      sp,
		sim:     des.New(),
		ps:      ps,
		servers: make([]serverState, spec.NumServers),
		res:     &res,
	}
	r.h = r.sim.RegisterHandler(r)
	r.svcCh = r.sim.NewChannel()
	for i := range r.servers {
		r.servers[i].occupancy.Set(0, 0)
	}
	r.population.Set(0, 0)

	// Schedule external arrivals.
	for s := 0; s < spec.NumServers; s++ {
		for _, t := range sp.Arrivals[s] {
			r.sim.ScheduleEventAt(t, r.h, kArrival, int32(s))
		}
	}

	// Observation schedule.
	if opts.ObserveEvery > 0 {
		for t := opts.ObserveEvery; t <= sp.Horizon+1e-9; t += opts.ObserveEvery {
			r.sim.ScheduleEventAt(t, r.h, kObserve, 0)
		}
	}

	if opts.Warmup > 0 {
		r.warmupAt = opts.Warmup
		r.sim.ScheduleEventAt(opts.Warmup, r.h, kWarmup, 0)
	}

	r.sim.RunUntil(sp.Horizon)
	now := r.sim.Now()
	res.MeanPopulation = r.population.MeanAt(now)
	for i := range r.servers {
		res.PerServerMeanNumber[i] = r.servers[i].occupancy.MeanAt(now)
	}
	if r.delayCount > 0 {
		res.MeanDelay = r.delaySum / float64(r.delayCount)
	}
	res.DelayCount = r.delayCount
	res.Departed = r.departed
	return res
}
