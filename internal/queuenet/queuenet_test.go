package queuenet

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/queueing"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

// singleServerSpec is an M/D/1 queue expressed as a one-server network.
func singleServerSpec(lambda float64) *Spec {
	return &Spec{
		NumServers:   1,
		ServiceTime:  1,
		ExternalRate: []float64{lambda},
		Transitions:  [][]Transition{nil},
	}
}

// tandemSpec is a two-server tandem: all customers enter server 0 and then
// visit server 1.
func tandemSpec(lambda float64) *Spec {
	return &Spec{
		NumServers:   2,
		ServiceTime:  1,
		ExternalRate: []float64{lambda, 0},
		Transitions:  [][]Transition{{{To: 1, Prob: 1}}, nil},
		Level:        []int{1, 2},
	}
}

func TestSpecValidate(t *testing.T) {
	good := tandemSpec(0.5)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []*Spec{
		{NumServers: 0},
		{NumServers: 1, ServiceTime: 0, ExternalRate: []float64{1}, Transitions: [][]Transition{nil}},
		{NumServers: 1, ServiceTime: 1, ExternalRate: []float64{1, 2}, Transitions: [][]Transition{nil}},
		{NumServers: 1, ServiceTime: 1, ExternalRate: []float64{1}, Transitions: [][]Transition{nil, nil}},
		{NumServers: 1, ServiceTime: 1, ExternalRate: []float64{-1}, Transitions: [][]Transition{nil}},
		{NumServers: 2, ServiceTime: 1, ExternalRate: []float64{1, 0},
			Transitions: [][]Transition{{{To: 5, Prob: 0.5}}, nil}},
		{NumServers: 2, ServiceTime: 1, ExternalRate: []float64{1, 0},
			Transitions: [][]Transition{{{To: 1, Prob: -0.5}}, nil}},
		{NumServers: 2, ServiceTime: 1, ExternalRate: []float64{1, 0},
			Transitions: [][]Transition{{{To: 1, Prob: 0.7}, {To: 1, Prob: 0.7}}, nil}},
		{NumServers: 2, ServiceTime: 1, ExternalRate: []float64{1, 0},
			Transitions: [][]Transition{nil, {{To: 0, Prob: 0.5}}}, Level: []int{1, 2}},
	}
	for i, bad := range cases {
		if err := bad.Validate(); err == nil {
			t.Fatalf("case %d: expected validation error", i)
		}
	}
}

func TestExitProb(t *testing.T) {
	s := tandemSpec(0.5)
	if s.ExitProb(0) != 0 {
		t.Fatalf("exit prob at server 0 = %v", s.ExitProb(0))
	}
	if s.ExitProb(1) != 1 {
		t.Fatalf("exit prob at server 1 = %v", s.ExitProb(1))
	}
}

func TestTrafficEquationsTandem(t *testing.T) {
	s := tandemSpec(0.6)
	rates := s.TotalArrivalRates()
	if !almostEqual(rates[0], 0.6, 1e-9) || !almostEqual(rates[1], 0.6, 1e-9) {
		t.Fatalf("rates = %v", rates)
	}
	if !almostEqual(s.MaxUtilization(), 0.6, 1e-9) {
		t.Fatalf("max utilisation = %v", s.MaxUtilization())
	}
	if !almostEqual(s.TotalExternalRate(), 0.6, 1e-12) {
		t.Fatal("total external rate wrong")
	}
}

func TestHypercubeSpecMatchesProposition5(t *testing.T) {
	// Proposition 5: under greedy routing the total arrival rate at every
	// hypercube arc equals rho = lambda * p, for any p.
	for _, p := range []float64{0.25, 0.5, 0.8, 1.0} {
		d := 5
		lambda := 1.2
		spec := HypercubeSpec(d, lambda, p)
		if err := spec.Validate(); err != nil {
			t.Fatal(err)
		}
		rho := lambda * p
		for s, rate := range spec.TotalArrivalRates() {
			if !almostEqual(rate, rho, 1e-9) {
				t.Fatalf("p=%v: arc %d total rate %v, want %v", p, s, rate, rho)
			}
		}
	}
}

func TestHypercubeSpecExternalRates(t *testing.T) {
	// Property A: external rate into an arc of dimension i is
	// lambda*p*(1-p)^(i-1); summed over one node's d arcs times 2^d nodes it
	// accounts for every generated packet that moves at all.
	d := 4
	lambda := 0.9
	p := 0.3
	spec := HypercubeSpec(d, lambda, p)
	perDim := make([]float64, d+1)
	for s := 0; s < spec.NumServers; s++ {
		perDim[spec.Level[s]] += spec.ExternalRate[s]
	}
	nodes := float64(int(1) << uint(d))
	for i := 1; i <= d; i++ {
		want := nodes * lambda * p * math.Pow(1-p, float64(i-1))
		if !almostEqual(perDim[i], want, 1e-9) {
			t.Fatalf("dimension %d external rate %v, want %v", i, perDim[i], want)
		}
	}
	// Total external rate = lambda*2^d*(1-(1-p)^d), the rate of packets with
	// at least one bit to flip.
	wantTotal := nodes * lambda * (1 - math.Pow(1-p, float64(d)))
	if !almostEqual(spec.TotalExternalRate(), wantTotal, 1e-9) {
		t.Fatalf("total external rate %v, want %v", spec.TotalExternalRate(), wantTotal)
	}
}

func TestHypercubeProductFormMatchesProposition12(t *testing.T) {
	// The product-form population of Q̃ is d*2^d*rho/(1-rho), and dividing by
	// lambda*2^d gives the paper's delay bound dp/(1-rho). Note the paper
	// applies Little's law with the full packet generation rate lambda*2^d
	// (packets that need no transmission are included with zero delay).
	d := 6
	p := 0.5
	lambda := 1.6 // rho = 0.8
	spec := HypercubeSpec(d, lambda, p)
	rho := lambda * p
	pop, err := spec.ProductFormMeanPopulation()
	if err != nil {
		t.Fatal(err)
	}
	wantPop := float64(d) * float64(int(1)<<uint(d)) * rho / (1 - rho)
	if !almostEqual(pop, wantPop, 1e-6) {
		t.Fatalf("product-form population %v, want %v", pop, wantPop)
	}
	bound := pop / (lambda * float64(int(1)<<uint(d)))
	wantBound := float64(d) * p / (1 - rho)
	if !almostEqual(bound, wantBound, 1e-9) {
		t.Fatalf("delay bound %v, want %v", bound, wantBound)
	}
}

func TestButterflySpecMatchesProposition15(t *testing.T) {
	// Proposition 15: every straight arc has total rate lambda*(1-p), every
	// vertical arc lambda*p.
	d := 5
	lambda := 0.8
	p := 0.3
	spec := ButterflySpec(d, lambda, p)
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	rates := spec.TotalArrivalRates()
	// Reconstruct arc kinds through the same indexing the builder used.
	rows := 1 << uint(d)
	for idx, rate := range rates {
		kindVertical := idx%(2*rows) >= rows
		want := lambda * (1 - p)
		if kindVertical {
			want = lambda * p
		}
		if !almostEqual(rate, want, 1e-9) {
			t.Fatalf("arc %d rate %v, want %v", idx, rate, want)
		}
	}
	if !almostEqual(spec.MaxUtilization(), lambda*math.Max(p, 1-p), 1e-9) {
		t.Fatalf("max utilisation %v", spec.MaxUtilization())
	}
}

func TestButterflyProductFormMatchesProposition17(t *testing.T) {
	d := 5
	lambda := 0.8
	p := 0.3
	spec := ButterflySpec(d, lambda, p)
	delay, err := spec.ProductFormMeanDelay()
	if err != nil {
		t.Fatal(err)
	}
	want := float64(d)*p/(1-lambda*p) + float64(d)*(1-p)/(1-lambda*(1-p))
	if !almostEqual(delay, want, 1e-9) {
		t.Fatalf("product-form delay %v, want %v (Prop. 17 bound)", delay, want)
	}
}

func TestProductFormUnstable(t *testing.T) {
	spec := singleServerSpec(1.5)
	if _, err := spec.ProductFormMeanPopulation(); err == nil {
		t.Fatal("expected instability error")
	}
	spec2 := &Spec{NumServers: 1, ServiceTime: 1, ExternalRate: []float64{0}, Transitions: [][]Transition{nil}}
	if _, err := spec2.ProductFormMeanDelay(); err == nil {
		t.Fatal("expected error for a network with no external arrivals")
	}
}

func TestSamplePathReproducibleAndLazy(t *testing.T) {
	spec := tandemSpec(0.5)
	a := GenerateSamplePath(spec, 100, 42)
	b := GenerateSamplePath(spec, 100, 42)
	if a.TotalArrivals() != b.TotalArrivals() {
		t.Fatal("same seed produced different arrival counts")
	}
	for s := range a.Arrivals {
		for i := range a.Arrivals[s] {
			if a.Arrivals[s][i] != b.Arrivals[s][i] {
				t.Fatal("same seed produced different arrival times")
			}
		}
	}
	// Decisions are memoised: asking twice gives the same value, and the two
	// identically-seeded paths agree.
	for k := 0; k < 20; k++ {
		if a.Decision(0, k) != a.Decision(0, k) {
			t.Fatal("decision not memoised")
		}
		if a.Decision(0, k) != b.Decision(0, k) {
			t.Fatal("same seed produced different decisions")
		}
	}
	// Different seeds differ somewhere.
	c := GenerateSamplePath(spec, 100, 43)
	if a.TotalArrivals() == c.TotalArrivals() {
		same := true
		for s := range a.Arrivals {
			for i := range a.Arrivals[s] {
				if a.Arrivals[s][i] != c.Arrivals[s][i] {
					same = false
				}
			}
		}
		if same && a.TotalArrivals() > 0 {
			t.Fatal("different seeds produced identical sample paths")
		}
	}
}

func TestGenerateSamplePathValidation(t *testing.T) {
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("expected panic for bad spec")
			}
		}()
		GenerateSamplePath(&Spec{NumServers: 0}, 10, 1)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("expected panic for bad horizon")
			}
		}()
		GenerateSamplePath(singleServerSpec(0.5), 0, 1)
	}()
}

func TestFIFOSingleServerMatchesMD1(t *testing.T) {
	spec := singleServerSpec(0.7)
	sp := GenerateSamplePath(spec, 100000, 7)
	res := RunFIFO(spec, sp, RunOptions{Warmup: 5000})
	want, _ := queueing.MD1{Lambda: 0.7}.MeanDelay()
	if math.Abs(res.MeanDelay-want) > 0.05*want {
		t.Fatalf("FIFO M/D/1 delay %v, want %v", res.MeanDelay, want)
	}
	wantN, _ := queueing.MD1{Lambda: 0.7}.MeanNumber()
	if math.Abs(res.MeanPopulation-wantN) > 0.1*wantN {
		t.Fatalf("FIFO M/D/1 population %v, want %v", res.MeanPopulation, wantN)
	}
}

func TestPSSingleServerMatchesProductForm(t *testing.T) {
	// A single PS server with Poisson arrivals and deterministic service is
	// an M/G/1-PS queue: mean population rho/(1-rho), mean delay 1/(1-rho).
	spec := singleServerSpec(0.7)
	sp := GenerateSamplePath(spec, 100000, 8)
	res := RunPS(spec, sp, RunOptions{Warmup: 5000})
	wantN := 0.7 / 0.3
	if math.Abs(res.MeanPopulation-wantN) > 0.1*wantN {
		t.Fatalf("PS population %v, want %v", res.MeanPopulation, wantN)
	}
	wantD := 1 / 0.3
	if math.Abs(res.MeanDelay-wantD) > 0.1*wantD {
		t.Fatalf("PS delay %v, want %v", res.MeanDelay, wantD)
	}
}

func TestLemma7SingleServerDomination(t *testing.T) {
	// Lemma 7: on any fixed arrival sequence, the i-th departure from a
	// deterministic PS server is no earlier than from the FIFO server. In
	// aggregate, cumulative departures under FIFO dominate those under PS at
	// every observation time.
	spec := singleServerSpec(0.85)
	sp := GenerateSamplePath(spec, 20000, 9)
	fifo := RunFIFO(spec, sp, RunOptions{ObserveEvery: 50})
	ps := RunPS(spec, sp, RunOptions{ObserveEvery: 50})
	if len(fifo.Observations) == 0 || len(fifo.Observations) != len(ps.Observations) {
		t.Fatalf("observation counts %d vs %d", len(fifo.Observations), len(ps.Observations))
	}
	for i := range fifo.Observations {
		f, p := fifo.Observations[i], ps.Observations[i]
		if f.Time != p.Time {
			t.Fatal("observation times differ")
		}
		if f.Departures < p.Departures {
			t.Fatalf("t=%v: FIFO departures %d < PS departures %d (violates Lemma 7)",
				f.Time, f.Departures, p.Departures)
		}
		if f.Population > p.Population {
			t.Fatalf("t=%v: FIFO population %d > PS population %d (violates Prop. 11)",
				f.Time, f.Population, p.Population)
		}
	}
	if fifo.MeanDelay > ps.MeanDelay {
		t.Fatalf("FIFO mean delay %v exceeds PS mean delay %v", fifo.MeanDelay, ps.MeanDelay)
	}
}

func TestLemma10HypercubeDomination(t *testing.T) {
	// Lemma 10 / Proposition 11 on the real object of interest: the
	// equivalent network Q of the 4-cube at rho = 0.8. On a common sample
	// path the FIFO network must have delivered at least as many packets as
	// the PS network at every time, and hold at most as many.
	spec := HypercubeSpec(4, 1.6, 0.5)
	sp := GenerateSamplePath(spec, 4000, 10)
	fifo := RunFIFO(spec, sp, RunOptions{ObserveEvery: 20, Warmup: 400})
	ps := RunPS(spec, sp, RunOptions{ObserveEvery: 20, Warmup: 400})
	for i := range fifo.Observations {
		f, p := fifo.Observations[i], ps.Observations[i]
		if f.Departures < p.Departures {
			t.Fatalf("t=%v: FIFO departures %d < PS departures %d", f.Time, f.Departures, p.Departures)
		}
		if f.Population > p.Population {
			t.Fatalf("t=%v: FIFO population %d > PS population %d", f.Time, f.Population, p.Population)
		}
	}
	if fifo.MeanPopulation > ps.MeanPopulation {
		t.Fatalf("FIFO mean population %v exceeds PS mean population %v",
			fifo.MeanPopulation, ps.MeanPopulation)
	}
}

func TestPSHypercubeMatchesProductForm(t *testing.T) {
	// The PS network Q̃ is product form; its simulated mean population must
	// match d*2^d*rho/(1-rho) within simulation noise.
	d := 4
	lambda := 1.2 // rho = 0.6
	spec := HypercubeSpec(d, lambda, 0.5)
	sp := GenerateSamplePath(spec, 30000, 11)
	res := RunPS(spec, sp, RunOptions{Warmup: 2000})
	want, err := spec.ProductFormMeanPopulation()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.MeanPopulation-want) > 0.08*want {
		t.Fatalf("PS population %v, product form predicts %v", res.MeanPopulation, want)
	}
}

func TestFIFOHypercubeDelayWithinPaperBounds(t *testing.T) {
	// The FIFO network Q is the hypercube under greedy routing (by the §3.1
	// equivalence); its mean delay must respect Props 12 and 13. The delay
	// reported here is conditional on packets that enter the network (the
	// paper's T also counts stay-at-home packets with zero delay), so we
	// convert before comparing.
	d := 5
	p := 0.5
	lambda := 1.4 // rho = 0.7
	rho := lambda * p
	spec := HypercubeSpec(d, lambda, p)
	sp := GenerateSamplePath(spec, 20000, 12)
	res := RunFIFO(spec, sp, RunOptions{Warmup: 2000})
	// Fraction of generated packets that enter the network.
	enterProb := 1 - math.Pow(1-p, float64(d))
	overallDelay := res.MeanDelay * enterProb
	upper := float64(d) * p / (1 - rho)
	lower := float64(d)*p + p*rho/(2*(1-rho))
	if overallDelay > upper {
		t.Fatalf("measured delay %v exceeds the Prop. 12 bound %v", overallDelay, upper)
	}
	if overallDelay < lower-0.3 {
		t.Fatalf("measured delay %v below the Prop. 13 bound %v", overallDelay, lower)
	}
}

func TestRunDisciplineRejectsBadSpec(t *testing.T) {
	spec := singleServerSpec(0.5)
	sp := GenerateSamplePath(spec, 100, 1)
	bad := &Spec{NumServers: 0}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	RunFIFO(bad, sp, RunOptions{})
}

// Property: for any stable utilisation, the traffic equations of the
// hypercube spec give exactly rho at every server (Proposition 5), and the
// product-form delay equals dp/(1-rho).
func TestQuickHypercubeTrafficEquations(t *testing.T) {
	f := func(pRaw, rhoRaw uint8) bool {
		p := 0.05 + 0.9*float64(pRaw)/255
		rho := 0.05 + 0.9*float64(rhoRaw)/255
		lambda := rho / p
		d := 4
		spec := HypercubeSpec(d, lambda, p)
		for _, r := range spec.TotalArrivalRates() {
			if math.Abs(r-rho) > 1e-6 {
				return false
			}
		}
		delay, err := spec.ProductFormMeanDelay()
		if err != nil {
			return false
		}
		// ProductFormMeanDelay divides by the rate of packets that enter the
		// network; the paper's bound divides by all generated packets.
		enterProb := 1 - math.Pow(1-p, float64(d))
		paperBound := float64(d) * p / (1 - rho)
		return math.Abs(delay*enterProb-paperBound) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkFIFOHypercube(b *testing.B) {
	spec := HypercubeSpec(4, 1.2, 0.5)
	for i := 0; i < b.N; i++ {
		sp := GenerateSamplePath(spec, 500, uint64(i))
		_ = RunFIFO(spec, sp, RunOptions{})
	}
}

func BenchmarkPSHypercube(b *testing.B) {
	spec := HypercubeSpec(4, 1.2, 0.5)
	for i := 0; i < b.N; i++ {
		sp := GenerateSamplePath(spec, 500, uint64(i))
		_ = RunPS(spec, sp, RunOptions{})
	}
}
