// Heavy traffic: push the load factor towards one on a 6-cube and watch the
// delay grow like 1/(1-rho), the behaviour the paper proves is optimal for
// any fixed dimension. The scaled quantity (1-rho)*T stays inside the
// interval [p/2, d*p] predicted at the end of §3.3. Scenarios run through
// the unified API in repro/sim.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	"repro/sim"
)

func main() {
	quick := flag.Bool("quick", false, "shortened horizon for smoke runs")
	flag.Parse()
	const d = 6
	const p = 0.5
	horizon := 8000.0
	if *quick {
		horizon = 1200
	}
	params := sim.HypercubeParams{D: d, Lambda: 1, P: p}

	fmt.Println("Heavy-traffic behaviour of greedy routing on the 6-cube (p = 1/2)")
	fmt.Printf("%-6s  %-12s  %-12s  %-12s  %-12s\n", "rho", "T measured", "(1-rho)*T", "interval lo", "interval hi")
	for _, rho := range []float64{0.5, 0.7, 0.8, 0.9, 0.95} {
		res, err := sim.Run(context.Background(), sim.Scenario{
			Topology:       sim.Hypercube(d),
			P:              p,
			LoadFactor:     rho,
			Horizon:        horizon,
			WarmupFraction: 0.3,
			Seed:           7,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-6.2f  %-12.3f  %-12.3f  %-12.3f  %-12.3f\n",
			rho, res.MeanDelay, (1-rho)*res.MeanDelay,
			params.HeavyTrafficLimitLowerBound(), params.HeavyTrafficLimitUpperBound())
	}
	fmt.Println("\nNear rho = 1 the delay diverges like 1/(1-rho), as Propositions 12 and 13 predict.")
}
