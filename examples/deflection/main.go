// Deflection vs store-and-forward: compare the paper's greedy queueing
// scheme against hot-potato (deflection) routing, the bufferless alternative
// analysed approximately by Greenberg and Hajek and cited in the paper's
// related-work section. Both run through the unified scenario API
// (repro/sim) — deflection is just another Scenario router kind, executing
// on its own slotted kernel. Deflection never queues inside the network, but
// under load it pays for that with extra (unprofitable) hops, while greedy
// routing keeps every packet on a shortest path and queues instead.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	"repro/sim"
)

func main() {
	quick := flag.Bool("quick", false, "shortened horizon for smoke runs")
	flag.Parse()
	const d = 6
	const p = 0.5
	horizon := 4000.0
	if *quick {
		horizon = 800
	}

	fmt.Println("Greedy store-and-forward vs deflection routing on the 6-cube")
	fmt.Printf("%-6s  %-12s  %-14s  %-16s  %-14s\n",
		"rho", "greedy T", "deflection T", "extra hops/pkt", "deflections/pkt")
	for _, rho := range []float64{0.2, 0.5, 0.8} {
		g, err := sim.Run(context.Background(), sim.Scenario{
			Topology: sim.Hypercube(d), P: p, LoadFactor: rho, Horizon: horizon, Seed: 17,
		})
		if err != nil {
			log.Fatal(err)
		}
		defl, err := sim.Run(context.Background(), sim.Scenario{
			Topology: sim.Hypercube(d), P: p, LoadFactor: rho,
			Horizon: float64(int(horizon)), Seed: 17, Router: sim.Deflection,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-6.2f  %-12.3f  %-14.3f  %-16.3f  %-14.3f\n",
			rho, g.MeanDelay, defl.MeanDelay,
			defl.Metrics.MeanHops-defl.Deflection.MeanShortest, defl.Deflection.MeanDeflections)
	}
	fmt.Println("\nGreedy packets always travel their Hamming distance; deflected packets wander.")
}
