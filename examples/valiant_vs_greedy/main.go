// Valiant vs greedy vs the pipelined baseline: the comparison that motivates
// the paper. On the dynamic routing problem,
//
//   - plain greedy dimension-order routing is stable for every rho < 1 and has
//     delay O(d);
//   - Valiant two-phase randomized routing roughly doubles every packet's path,
//     so at the same packet generation rate it loads the arcs twice as much
//     (the "mixing" trade-off discussed in the paper's concluding remarks);
//   - the non-greedy pipelined batch scheme of §2.3 only sustains loads of
//     order 1/d and its origin backlog explodes at loads greedy handles
//     easily.
//
// The two scenario-API runs differ only in Scenario.Router.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	"repro/internal/routing"
	"repro/sim"
)

func main() {
	quick := flag.Bool("quick", false, "shortened horizon for smoke runs")
	flag.Parse()
	const d = 6
	const p = 0.5
	horizon := 4000.0
	if *quick {
		horizon = 800
	}

	fmt.Println("Dynamic routing on the 6-cube: greedy vs Valiant two-phase vs pipelined batches")
	fmt.Printf("%-6s  %-14s  %-14s  %-22s\n", "rho", "greedy T", "valiant T", "pipelined (T, backlog/s)")
	for _, rho := range []float64{0.1, 0.3, 0.5} {
		base := sim.Scenario{
			Topology: sim.Hypercube(d), P: p, LoadFactor: rho, Horizon: horizon, Seed: 11,
		}
		g, err := sim.Run(context.Background(), base)
		if err != nil {
			log.Fatal(err)
		}
		valiant := base
		valiant.Router = sim.ValiantTwoPhase
		v, err := sim.Run(context.Background(), valiant)
		if err != nil {
			log.Fatal(err)
		}
		b := routing.RunPipelined(routing.PipelinedConfig{
			D: d, Lambda: rho / p, P: p, Horizon: horizon, Seed: 11,
		})
		fmt.Printf("%-6.2f  %-14.3f  %-14.3f  T=%-8.2f slope=%+.3f\n",
			rho, g.MeanDelay, v.MeanDelay, b.MeanDelay, b.BacklogSlope)
	}
	fmt.Println("\nA positive backlog slope means the pipelined scheme cannot keep up: its")
	fmt.Println("stability region shrinks like 1/d, while greedy routing works for any rho < 1.")
}
