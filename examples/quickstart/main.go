// Quickstart: run greedy dimension-order routing on an 8-dimensional
// hypercube at 80% load with uniform traffic and compare the measured mean
// delay against the paper's closed-form bounds.
//
// This example deliberately uses the repro/greedy compatibility facade — a
// thin shim over the unified scenario API in repro/sim — so its output pins
// the shim's equivalence; the other examples use sim.Run directly.
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/greedy"
)

func main() {
	quick := flag.Bool("quick", false, "shortened horizon for smoke runs")
	flag.Parse()
	horizon := 4000.0
	if *quick {
		horizon = 600
	}
	res, err := greedy.RunHypercube(greedy.HypercubeConfig{
		D:          8,       // 256 nodes, 2048 arcs
		P:          0.5,     // uniform destination distribution
		LoadFactor: 0.8,     // rho = lambda*p
		Horizon:    horizon, // simulated time units
		Seed:       1,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Greedy dimension-order routing on the 8-cube, rho = 0.8")
	fmt.Printf("  measured mean delay T: %.3f time units\n", res.MeanDelay)
	fmt.Printf("  paper lower bound (Prop 13): %.3f\n", res.GreedyLowerBound)
	fmt.Printf("  paper upper bound (Prop 12): %.3f\n", res.GreedyUpperBound)
	fmt.Printf("  within bounds: %v\n", res.WithinPaperBounds)
	fmt.Printf("  mean hops per packet (d*p): %.3f\n", res.Metrics.MeanHops)
	fmt.Printf("  mean packets stored per node: %.3f (bound %.3f)\n",
		res.MeanPacketsPerNode, mustFloat(res.Params.MeanPacketsPerNodeUpperBound()))
	fmt.Printf("  packets delivered in the measurement window: %d\n", res.Metrics.Delivered)
}

func mustFloat(v float64, err error) float64 {
	if err != nil {
		log.Fatal(err)
	}
	return v
}
