// Butterfly: greedy routing on the d-dimensional butterfly with an asymmetric
// destination distribution (p != 1/2), expressed through the unified scenario
// API (repro/sim). The load factor is lambda*max{p, 1-p} because whichever
// arc type carries more traffic becomes the bottleneck (§4.2); the measured
// per-arc-type utilisations reproduce Proposition 15 and the delay stays
// inside the Prop 14 / Prop 17 envelope.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	"repro/sim"
)

func main() {
	quick := flag.Bool("quick", false, "shortened horizon for smoke runs")
	flag.Parse()
	const d = 6
	horizon := 6000.0
	if *quick {
		horizon = 800
	}
	fmt.Println("Greedy routing on the 6-dimensional butterfly")
	fmt.Printf("%-5s  %-7s  %-10s  %-12s  %-12s  %-10s  %-10s\n",
		"p", "rho", "T", "lower(P14)", "upper(P17)", "util(s)", "util(v)")
	for _, p := range []float64{0.2, 0.35, 0.5, 0.65, 0.8} {
		res, err := sim.Run(context.Background(), sim.Scenario{
			Topology:   sim.Butterfly(d),
			P:          p,
			LoadFactor: 0.85,
			Horizon:    horizon,
			Seed:       3,
		})
		if err != nil {
			log.Fatal(err)
		}
		b := res.Butterfly
		fmt.Printf("%-5.2f  %-7.3f  %-10.3f  %-12.3f  %-12.3f  %-10.3f  %-10.3f\n",
			p, res.LoadFactor, res.MeanDelay, b.UniversalLowerBound, b.GreedyUpperBound,
			b.StraightUtilization, b.VerticalUtilization)
	}
	fmt.Println("\nStraight arcs are busy a fraction lambda*(1-p) of the time and vertical arcs")
	fmt.Println("lambda*p (Proposition 15); the delay is O(d) for every fixed rho < 1.")
}
