// Slotted time: the §3.4 variant in which every node generates a
// Poisson(lambda*tau) batch of packets at the start of each slot of length
// tau. The measured delay exceeds the continuous-time value by less than one
// slot, matching the bound T_slotted <= dp/(1-rho) + tau. Scenarios run
// through the unified API in repro/sim.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	"repro/sim"
)

func main() {
	quick := flag.Bool("quick", false, "shortened horizon for smoke runs")
	flag.Parse()
	const d = 6
	const p = 0.5
	const rho = 0.7
	horizon := 6000.0
	if *quick {
		horizon = 800
	}

	base := sim.Scenario{
		Topology: sim.Hypercube(d), P: p, LoadFactor: rho, Horizon: horizon, Seed: 5,
	}
	cont, err := sim.Run(context.Background(), base)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Continuous time reference: T = %.3f (bound %.3f)\n\n",
		cont.MeanDelay, cont.Hypercube.GreedyUpperBound)

	fmt.Printf("%-6s  %-12s  %-16s  %-12s\n", "tau", "T slotted", "bound dp/(1-rho)+tau", "extra vs continuous")
	for _, tau := range []float64{0.25, 0.5, 1.0} {
		sc := base
		sc.Slotted = true
		sc.Tau = tau
		res, err := sim.Run(context.Background(), sc)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-6.2f  %-12.3f  %-16.3f  %+.3f\n",
			tau, res.MeanDelay, res.Hypercube.SlottedUpperBound, res.MeanDelay-cont.MeanDelay)
	}
	fmt.Println("\nSlotting synchronises arrivals into bursts, but costs at most one slot of delay (§3.4).")
}
